// Table I reproduction at test scale: update-overhead ordering between
// ID-ACL, Argus, and ABE on a concrete synthetic enterprise.
#include <gtest/gtest.h>

#include "baselines/updating.hpp"

namespace argus::baselines {
namespace {

EnterpriseSpec small_spec() {
  EnterpriseSpec spec;
  spec.departments = 3;
  spec.subjects_per_department = 10;  // alpha
  spec.rooms_per_department = 4;
  spec.objects_per_room = 5;          // N = 20 per department member
  return spec;
}

class UpdatingTest : public ::testing::Test {
 protected:
  UpdatingTest() : e_(small_spec()) {}
  SyntheticEnterprise e_;
  const std::string subject_ = "dept-0:subject-0";
};

TEST_F(UpdatingTest, PopulationBuilt) {
  EXPECT_EQ(e_.subject_ids().size(), 30u);
  EXPECT_EQ(e_.object_ids().size(), 60u);
  EXPECT_EQ(e_.object_policies().size(), 60u);
  // N: a subject reaches her department's 4*5 = 20 devices.
  EXPECT_EQ(e_.backend().accessible_objects(subject_).size(), 20u);
}

TEST_F(UpdatingTest, IdAclPaysNOnBothOperations) {
  const auto o = measure_idacl(e_, subject_);
  EXPECT_EQ(o.add_subject, 20u);     // N
  EXPECT_EQ(o.remove_subject, 20u);  // N
}

TEST_F(UpdatingTest, ArgusAddsWithConstantOverhead) {
  const auto o = measure_argus(e_, subject_);
  EXPECT_EQ(o.add_subject, 1u);      // Table I: 1
  EXPECT_EQ(o.remove_subject, 20u);  // Table I: N
}

TEST_F(UpdatingTest, AbeRemovalExceedsArgus) {
  const auto abe = measure_abe(e_, subject_);
  const auto argus = measure_argus(e_, subject_);
  EXPECT_EQ(abe.add_subject, 1u);
  // xi_o*N + xi_s*(alpha-1): 20 re-encrypted ciphertexts + 9 re-keyed
  // category members.
  EXPECT_EQ(abe.remove_subject, 20u + 9u);
  EXPECT_GT(abe.remove_subject, argus.remove_subject);
}

TEST_F(UpdatingTest, AddSubjectRatioMatchesTableOne) {
  // Argus vs ID-ACL on add: 1 vs N -> N-fold advantage (paper: up to
  // 1000x at N = 1000).
  const auto idacl = measure_idacl(e_, subject_);
  const auto argus = measure_argus(e_, subject_);
  EXPECT_EQ(idacl.add_subject / argus.add_subject, 20u);
}

TEST_F(UpdatingTest, AbeGapGrowsWithCategorySize) {
  // With larger alpha the ABE revocation overhead diverges from Argus —
  // the paper's "easily goes to 10N" regime.
  EnterpriseSpec big = small_spec();
  big.subjects_per_department = 60;
  SyntheticEnterprise e2(big);
  const auto abe = measure_abe(e2, "dept-0:subject-0");
  const auto argus = measure_argus(e2, "dept-0:subject-0");
  EXPECT_EQ(abe.remove_subject, 20u + 59u);
  EXPECT_GE(abe.remove_subject, 3 * argus.remove_subject);
}

TEST_F(UpdatingTest, UnknownSubjectThrows) {
  EXPECT_THROW((void)e_.subject_attrs("ghost"), std::invalid_argument);
}

}  // namespace
}  // namespace argus::baselines
