#include <gtest/gtest.h>

#include "baselines/pbc_discovery.hpp"

namespace argus::baselines {
namespace {

backend::Profile covert_prof() {
  backend::Profile p;
  p.entity_id = "kiosk";
  p.role = crypto::EntityRole::kObject;
  p.variant_tag = "covert";
  p.services = {"support flyers"};
  return p;
}

class PbcDiscoveryTest : public ::testing::Test {
 protected:
  PbcDiscoveryTest() : sys_(31), group_(sys_.create_group()) {}
  PbcDiscoverySystem sys_;
  pbc::GroupAuthority group_;
};

TEST_F(PbcDiscoveryTest, FellowsDiscoverCovertService) {
  const auto subject = sys_.enroll(group_, "alice");
  PbcDiscoverySystem::CovertObject obj{sys_.enroll(group_, "kiosk"),
                                       covert_prof()};
  const auto attempt = sys_.discover(subject, "alice", obj);
  ASSERT_TRUE(attempt.prof.has_value());
  EXPECT_EQ(attempt.prof->variant_tag, "covert");
  EXPECT_EQ(attempt.pairings_done, 2u);  // one per side — Fig 6(d) unit
}

TEST_F(PbcDiscoveryTest, NonFellowLearnsNothing) {
  const auto other_group = sys_.create_group();
  const auto outsider = sys_.enroll(other_group, "eve");
  PbcDiscoverySystem::CovertObject obj{sys_.enroll(group_, "kiosk"),
                                       covert_prof()};
  const auto attempt = sys_.discover(outsider, "eve", obj);
  EXPECT_FALSE(attempt.prof.has_value());
}

TEST_F(PbcDiscoveryTest, ClaimedIdentityMustMatchCredential) {
  // Using Alice's id with Bob's credential fails: the object derives the
  // key for "alice" but the subject can only pair with her own credential.
  const auto bob = sys_.enroll(group_, "bob");
  PbcDiscoverySystem::CovertObject obj{sys_.enroll(group_, "kiosk"),
                                       covert_prof()};
  const auto attempt = sys_.discover(bob, "alice", obj);
  EXPECT_FALSE(attempt.prof.has_value());
}

TEST_F(PbcDiscoveryTest, DistinctGroupsIsolated) {
  const auto g2 = sys_.create_group();
  const auto alice_g2 = sys_.enroll(g2, "alice");
  PbcDiscoverySystem::CovertObject obj{sys_.enroll(group_, "kiosk"),
                                       covert_prof()};
  EXPECT_FALSE(sys_.discover(alice_g2, "alice", obj).prof.has_value());
}

}  // namespace
}  // namespace argus::baselines
