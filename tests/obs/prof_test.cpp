#include "obs/prof.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

namespace argus::obs::prof {
namespace {

TEST(ProfScopeTest, NoOpWithoutAttachedBuffer) {
  ASSERT_EQ(t_current, nullptr);
  {
    ARGUS_PROF_SCOPE("ghost");
    ARGUS_PROF_SCOPE("ghost.child");
  }
  Profiler profiler;
  EXPECT_TRUE(profiler.empty());
}

TEST(ProfScopeTest, RecordsNestedPathsAndSelfTime) {
  Profiler profiler;
  {
    Profiler::Attach attach(profiler, 0);
    {
      ARGUS_PROF_SCOPE("outer");
      { ARGUS_PROF_SCOPE("inner"); }
      { ARGUS_PROF_SCOPE("inner"); }
    }
  }
  EXPECT_EQ(t_current, nullptr);

  const auto by_path = profiler.by_path();
  ASSERT_EQ(by_path.size(), 2u);
  const auto& outer = by_path.at("outer");
  const auto& inner = by_path.at("outer;inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 2u);
  // Self excludes children: outer self + both inner inclusives = outer
  // inclusive.
  EXPECT_EQ(outer.self_ns + inner.incl_ns, outer.incl_ns);
  EXPECT_EQ(inner.self_ns, inner.incl_ns);
}

TEST(ProfScopeTest, SameLabelUnderDifferentParentsIsDistinctPath) {
  Profiler profiler;
  {
    Profiler::Attach attach(profiler, 0);
    {
      ARGUS_PROF_SCOPE("a");
      ARGUS_PROF_SCOPE("leaf");
    }
    {
      ARGUS_PROF_SCOPE("b");
      ARGUS_PROF_SCOPE("leaf");
    }
  }
  const auto by_path = profiler.by_path();
  EXPECT_EQ(by_path.count("a;leaf"), 1u);
  EXPECT_EQ(by_path.count("b;leaf"), 1u);
  // by_label folds both to the leaf label.
  const auto by_label = profiler.by_label();
  EXPECT_EQ(by_label.at("leaf").count, 2u);
}

TEST(ProfScopeTest, MergedEventsSortedByLaneThenSeq) {
  Profiler profiler;
  {
    Profiler::Attach attach(profiler, 7);
    ARGUS_PROF_SCOPE("x");
  }
  std::thread worker([&profiler] {
    Profiler::Attach attach(profiler, 3);
    ARGUS_PROF_SCOPE("y");
    ARGUS_PROF_SCOPE("z");
  });
  worker.join();

  const auto merged = profiler.merged_events();
  ASSERT_EQ(merged.size(), 3u);
  // Lane order, not attach order; seq is *begin* order within a lane.
  EXPECT_EQ(merged[0].lane, 3u);
  EXPECT_EQ(merged[0].path, "y");
  EXPECT_EQ(merged[1].path, "y;z");
  EXPECT_EQ(merged[2].lane, 7u);
  EXPECT_EQ(merged[2].path, "x");
  EXPECT_LT(merged[0].event.seq, merged[1].event.seq);
}

TEST(ProfScopeTest, NestedAttachRestoresPrevious) {
  Profiler a, b;
  Profiler::Attach attach_a(a, 0);
  ThreadBuffer* buf_a = t_current;
  {
    Profiler::Attach attach_b(b, 0);
    EXPECT_NE(t_current, buf_a);
    ARGUS_PROF_SCOPE("in_b");
  }
  EXPECT_EQ(t_current, buf_a);
  EXPECT_TRUE(a.by_path().empty());
  EXPECT_EQ(b.by_path().count("in_b"), 1u);
}

TEST(ProfScopeTest, EventCapTruncatesListButNotAggregates) {
  Profiler profiler(Profiler::Options{.max_events_per_lane = 4});
  {
    Profiler::Attach attach(profiler, 0);
    for (int i = 0; i < 10; ++i) {
      ARGUS_PROF_SCOPE("hot");
    }
  }
  EXPECT_TRUE(profiler.truncated());
  EXPECT_EQ(profiler.merged_events().size(), 4u);
  EXPECT_EQ(profiler.by_path().at("hot").count, 10u);  // aggregates exact
}

TEST(ProfScopeTest, ClearEmptiesEverything) {
  Profiler profiler;
  {
    Profiler::Attach attach(profiler, 0);
    ARGUS_PROF_SCOPE("gone");
  }
  ASSERT_FALSE(profiler.empty());
  profiler.clear();
  EXPECT_TRUE(profiler.empty());
  EXPECT_TRUE(profiler.merged_events().empty());
  EXPECT_FALSE(profiler.truncated());
}

TEST(ProfExportTest, CollapsedStackFormat) {
  Profiler profiler;
  {
    Profiler::Attach attach(profiler, 0);
    ARGUS_PROF_SCOPE("root");
    ARGUS_PROF_SCOPE("leaf");
  }
  std::ostringstream os;
  profiler.write_collapsed(os);
  const std::string out = os.str();
  // One "path;segments <self_us>" line per path.
  EXPECT_NE(out.find("root;leaf "), std::string::npos);
  for (const char c : out) {
    ASSERT_TRUE(c == '\n' || c >= ' ') << "control char in collapsed output";
  }
}

TEST(ProfExportTest, JsonExportHasSchemaPathsAndEvents) {
  Profiler profiler;
  {
    Profiler::Attach attach(profiler, 2);
    ARGUS_PROF_SCOPE("span");
  }
  std::ostringstream os;
  profiler.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(out.find("\"span\""), std::string::npos);
  EXPECT_NE(out.find("\"events\":["), std::string::npos);
  EXPECT_NE(out.find("\"lane\":2"), std::string::npos);
}

TEST(ProfScopeTest, UnbalancedExitIsIgnored) {
  Profiler profiler;
  {
    Profiler::Attach attach(profiler, 0);
    t_current->exit();  // no matching enter: must not crash or record
    ARGUS_PROF_SCOPE("ok");
  }
  EXPECT_EQ(profiler.by_path().size(), 1u);
}

// --------------------------------------------------------------------------
// Shared flat-span aggregation (tools/traceview --top).

TEST(FlatSpanTest, SelfTimeAttributionPerGroup) {
  // Group 1: parent [0,10) with child [2,5). Group 2: lone span [0,4).
  std::vector<FlatSpan> spans = {
      {1, 0, 10, "parent"},
      {1, 2, 3, "child"},
      {2, 0, 4, "child"},
  };
  const auto stats = aggregate_flat_spans(std::move(spans), /*unit_to_ns=*/1.0);
  EXPECT_EQ(stats.at("parent").count, 1u);
  EXPECT_EQ(stats.at("parent").incl_ns, 10u);
  EXPECT_EQ(stats.at("parent").self_ns, 7u);  // 10 - 3 nested
  EXPECT_EQ(stats.at("child").count, 2u);
  EXPECT_EQ(stats.at("child").incl_ns, 7u);
  EXPECT_EQ(stats.at("child").self_ns, 7u);
}

TEST(FlatSpanTest, GroupsDoNotNestAcrossEachOther) {
  // Identical timestamps in different groups must not be treated as
  // parent/child.
  std::vector<FlatSpan> spans = {{1, 0, 10, "a"}, {2, 1, 2, "b"}};
  const auto stats = aggregate_flat_spans(std::move(spans), 1.0);
  EXPECT_EQ(stats.at("a").self_ns, 10u);
  EXPECT_EQ(stats.at("b").self_ns, 2u);
}

TEST(FlatSpanTest, TopTableRanksBySelfTime) {
  std::map<std::string, PathStat> stats;
  stats["cold"] = {1, 5, 5};
  stats["hot"] = {2, 100, 90};
  stats["warm"] = {3, 50, 40};
  std::ostringstream os;
  write_top_table(os, stats, 2, /*unit_div=*/1.0);
  const std::string out = os.str();
  const auto hot = out.find("hot");
  const auto warm = out.find("warm");
  EXPECT_NE(hot, std::string::npos);
  EXPECT_NE(warm, std::string::npos);
  EXPECT_LT(hot, warm);                              // ranked by self time
  EXPECT_EQ(out.find("cold"), std::string::npos);    // cut by top-2
}

}  // namespace
}  // namespace argus::obs::prof
