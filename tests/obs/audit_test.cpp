#include "obs/audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "argus/discovery.hpp"
#include "backend/registry.hpp"
#include "obs/metrics.hpp"

namespace argus::obs {
namespace {

using backend::Level;

// --- synthetic traces: the auditor's checks in isolation -----------------

void emit_exchange(Tracer& t, double at, std::uint32_t node,
                   std::uint64_t declared_level, std::uint64_t reply_level,
                   double dur, std::uint64_t res2_bytes,
                   std::uint64_t que2_bytes = 300) {
  t.instant(at, node, "node", "meta", declared_level, 1, "obj");
  t.instant(at, 1, "tx.QUE2", "net", que2_bytes);
  t.begin(at, node, "handle.QUE2", "phase", que2_bytes);
  t.instant(at + dur, node, "tx.RES2", "net", res2_bytes, reply_level);
  t.end(at + dur, node, 0, reply_level);
}

TEST(IndistAuditTest, EmptyTraceFailsWithNoData) {
  Tracer t;
  const auto rep = audit_indistinguishability(t);
  EXPECT_FALSE(rep.passed);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].check, "no-data");
}

TEST(IndistAuditTest, ConstantLengthsAndTimesPass) {
  Tracer t;
  emit_exchange(t, 0, 2, 3, 3, 1.0, 512);  // covert face
  emit_exchange(t, 5, 2, 3, 2, 1.0, 512);  // cover face, same node
  emit_exchange(t, 9, 3, 2, 2, 1.0, 512);  // pure Level 2 node
  const auto rep = audit_indistinguishability(t);
  EXPECT_TRUE(rep.passed) << rep.summary();
  EXPECT_EQ(rep.que2_spans, 3u);
  EXPECT_EQ(rep.res2_count, 3u);
}

TEST(IndistAuditTest, FlagsVaryingRes2Length) {
  Tracer t;
  emit_exchange(t, 0, 2, 3, 3, 1.0, 700);  // covert reply is longer
  emit_exchange(t, 5, 2, 3, 2, 1.0, 512);
  const auto rep = audit_indistinguishability(t);
  EXPECT_FALSE(rep.passed);
  EXPECT_TRUE(std::any_of(rep.violations.begin(), rep.violations.end(),
                          [](const IndistViolation& v) {
                            return v.check == "res2-length" && v.node == 2;
                          }))
      << rep.summary();
}

TEST(IndistAuditTest, FlagsVaryingQue2Length) {
  Tracer t;
  emit_exchange(t, 0, 2, 3, 3, 1.0, 512, 300);
  emit_exchange(t, 5, 2, 3, 2, 1.0, 512, 340);
  const auto rep = audit_indistinguishability(t);
  EXPECT_FALSE(rep.passed);
  EXPECT_TRUE(std::any_of(
      rep.violations.begin(), rep.violations.end(),
      [](const IndistViolation& v) { return v.check == "que2-length"; }));

  IndistAuditOptions opts;
  opts.check_que2_length = false;
  EXPECT_TRUE(audit_indistinguishability(t, opts).passed);
}

TEST(IndistAuditTest, FlagsFaceTimingGap) {
  Tracer t;
  emit_exchange(t, 0, 2, 3, 3, 1.30, 512);  // covert slower than cover
  emit_exchange(t, 5, 2, 3, 2, 1.00, 512);
  const auto rep = audit_indistinguishability(t);
  EXPECT_FALSE(rep.passed);
  EXPECT_TRUE(std::any_of(rep.violations.begin(), rep.violations.end(),
                          [](const IndistViolation& v) {
                            return v.check == "timing-face" && v.node == 2;
                          }))
      << rep.summary();
  EXPECT_NEAR(rep.covert_mean_ms, 1.30, 1e-9);
  EXPECT_NEAR(rep.cover_mean_ms, 1.00, 1e-9);
}

TEST(IndistAuditTest, FlagsLevelTimingGap) {
  Tracer t;
  emit_exchange(t, 0, 2, 3, 2, 1.08, 512);  // Level 3 node, cover reply
  emit_exchange(t, 5, 3, 2, 2, 1.00, 512);  // pure Level 2 node
  const auto rep = audit_indistinguishability(t);
  EXPECT_FALSE(rep.passed);
  EXPECT_TRUE(std::any_of(
      rep.violations.begin(), rep.violations.end(),
      [](const IndistViolation& v) { return v.check == "timing-level"; }))
      << rep.summary();
  EXPECT_NEAR(rep.l3_mean_ms, 1.08, 1e-9);
  EXPECT_NEAR(rep.l2_mean_ms, 1.00, 1e-9);
}

TEST(IndistAuditTest, TimingGapWithinTolerancePasses) {
  Tracer t;
  emit_exchange(t, 0, 2, 3, 3, 1.005, 512);
  emit_exchange(t, 5, 2, 3, 2, 1.000, 512);
  EXPECT_TRUE(audit_indistinguishability(t).passed);
}

// --- full-protocol integration: the §VI-B game over the simulator --------

// A fellow of the "support" group and an outsider who holds only a
// cover-up key. Ids have equal length because the id is embedded in
// certificates and profiles: a length delta would shift QUE2 sizes for
// reasons the protocol cannot hide (and is not asked to).
class AuditLab : public ::testing::Test {
 protected:
  AuditLab() {
    fellow_ = be_.register_subject(
        "member", backend::AttributeMap{{"position", "employee"}},
        {"support"});
    outsider_ = be_.register_subject(
        "nobody", backend::AttributeMap{{"position", "employee"}});
    printer_ = be_.register_object(
        "printer", {}, Level::kL2, {},
        {{"position=='employee'", "staff", {"print"}}});
    // The covert face carries far more than one AES block (16 B) of extra
    // service text, so unpadded RES2 sizes must differ across faces.
    kiosk_ = be_.register_object(
        "kiosk", {}, Level::kL3, {},
        {{"position=='employee'", "staff", {"browse"}}},
        {{"support", "covert",
          {"browse", "counseling resources", "financial aid directory",
           "peer support meetup calendar", "emergency contact lines",
           "accessibility services catalog"}}});
  }

  core::DiscoveryScenario scenario(const backend::SubjectCredentials& s,
                                   bool pad, bool eq) {
    core::DiscoveryScenario sc;
    sc.subject = s;
    sc.admin_pub = be_.admin_public_key();
    sc.epoch = be_.now();
    sc.objects = {{printer_, 1}, {kiosk_, 1}};
    sc.pad_res2 = pad;
    sc.equalize_timing = eq;
    sc.seed = 42;
    return sc;
  }

  // Run the paired game — fellow then cover-up subject — into one trace.
  void run_pair(bool pad, bool eq, Tracer& trace,
                MetricsRegistry* metrics = nullptr) {
    for (const auto* s : {&fellow_, &outsider_}) {
      auto sc = scenario(*s, pad, eq);
      sc.tracer = &trace;
      sc.metrics = metrics;
      (void)core::run_discovery(sc);
    }
  }

  backend::Backend be_{crypto::Strength::b128, 5};
  backend::SubjectCredentials fellow_, outsider_;
  backend::ObjectCredentials printer_, kiosk_;
};

TEST_F(AuditLab, FullV30PassesAudit) {
  Tracer trace;
  run_pair(/*pad=*/true, /*eq=*/true, trace);
  EXPECT_TRUE(trace.well_formed());
  const auto rep = audit_indistinguishability(trace);
  EXPECT_TRUE(rep.passed) << rep.summary();
  EXPECT_GE(rep.que2_spans, 4u);  // 2 subjects x 2 objects
  EXPECT_GE(rep.res2_count, 4u);
  // Both faces were actually exercised (covert for the fellow, cover for
  // the outsider), otherwise the pass is vacuous.
  EXPECT_GT(rep.covert_mean_ms, 0.0);
  EXPECT_GT(rep.cover_mean_ms, 0.0);
}

TEST_F(AuditLab, UnpaddedRes2FailsAudit) {
  Tracer trace;
  run_pair(/*pad=*/false, /*eq=*/true, trace);
  const auto rep = audit_indistinguishability(trace);
  EXPECT_FALSE(rep.passed);
  EXPECT_TRUE(std::any_of(
      rep.violations.begin(), rep.violations.end(),
      [](const IndistViolation& v) { return v.check == "res2-length"; }))
      << rep.summary();
}

TEST_F(AuditLab, UnequalisedTimingFailsAudit) {
  Tracer trace;
  run_pair(/*pad=*/true, /*eq=*/false, trace);
  const auto rep = audit_indistinguishability(trace);
  EXPECT_FALSE(rep.passed);
  // Without equalisation a pure Level 2 object skips the cover-up MAC
  // check, so declared-L2 response times drop below declared-L3 ones.
  EXPECT_TRUE(std::any_of(rep.violations.begin(), rep.violations.end(),
                          [](const IndistViolation& v) {
                            return v.check.rfind("timing", 0) == 0;
                          }))
      << rep.summary();
}

TEST_F(AuditLab, SameSeedGivesByteIdenticalTrace) {
  Tracer t1, t2;
  run_pair(true, true, t1);
  run_pair(true, true, t2);
  std::ostringstream s1, s2;
  write_jsonl(t1, s1);
  write_jsonl(t2, s2);
  EXPECT_FALSE(s1.str().empty());
  EXPECT_EQ(s1.str(), s2.str());
}

TEST_F(AuditLab, ReportTrafficDerivesFromMetrics) {
  MetricsRegistry reg;
  auto sc = scenario(fellow_, true, true);
  sc.metrics = &reg;
  const auto report = core::run_discovery(sc);

  // Totals and the per-type split come from the same counters.
  const std::uint64_t split_sum = std::accumulate(
      report.bytes_by_msg.begin(), report.bytes_by_msg.end(), std::uint64_t{0},
      [](std::uint64_t acc, const auto& kv) { return acc + kv.second; });
  EXPECT_GT(split_sum, 0u);
  EXPECT_EQ(split_sum, report.net_stats.bytes);

  // The caller's registry mirrors the tallies and collects the
  // engine/network instruments.
  ASSERT_NE(reg.find_counter("net.msg.bytes.QUE2"), nullptr);
  EXPECT_EQ(reg.find_counter("net.msg.bytes.QUE2")->value(),
            report.bytes_by_msg.at("QUE2"));
  EXPECT_NE(reg.find_histogram("net.hop_latency_ms"), nullptr);
  const auto& hists = reg.histograms();
  EXPECT_TRUE(std::any_of(hists.begin(), hists.end(), [](const auto& kv) {
    return kv.first.rfind("crypto.ms.", 0) == 0;
  }));

  // Running again accumulates in the caller's registry without skewing
  // the fresh report.
  auto sc2 = scenario(fellow_, true, true);
  sc2.metrics = &reg;
  const auto report2 = core::run_discovery(sc2);
  EXPECT_EQ(report2.net_stats.bytes, report.net_stats.bytes);
  EXPECT_EQ(reg.find_counter("net.msg.bytes.QUE2")->value(),
            2 * report.bytes_by_msg.at("QUE2"));
}

}  // namespace
}  // namespace argus::obs
