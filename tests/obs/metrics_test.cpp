#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace argus::obs {
namespace {

TEST(CounterTest, IncrementsByDelta) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(4.0);
  h.observe(10.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  // underflow, (1,2], (2,5], overflow
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

TEST(HistogramTest, PercentilesAreMonotoneAndClamped) {
  Histogram h({0.1, 0.2, 0.5, 1.0, 2.0, 5.0});
  for (int i = 1; i <= 100; ++i) h.observe(0.03 * i);  // 0.03 .. 3.0
  const double p50 = h.p50(), p95 = h.p95(), p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  // True median is ~1.5; bucket interpolation should land in (1.0, 2.0].
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
}

TEST(HistogramTest, SingleValuePercentile) {
  Histogram h;
  h.observe(0.08);
  EXPECT_DOUBLE_EQ(h.p50(), 0.08);
  EXPECT_DOUBLE_EQ(h.p99(), 0.08);
}

TEST(HistogramTest, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
}

TEST(MetricsRegistryTest, FindOrCreateSemantics) {
  MetricsRegistry reg;
  reg.counter("a").inc(3);
  reg.counter("a").inc(4);
  EXPECT_EQ(reg.counter("a").value(), 7u);

  reg.histogram("h", {1.0, 2.0}).observe(1.5);
  reg.histogram("h").observe(1.7);  // reuses the fixed layout
  EXPECT_EQ(reg.histogram("h").count(), 2u);
  EXPECT_EQ(reg.histogram("h").bounds().size(), 2u);

  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  ASSERT_NE(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_counter("a")->value(), 7u);
}

TEST(MetricsRegistryTest, RenderIsDeterministicAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.last").inc(1);
  reg.counter("a.first").inc(2);
  reg.histogram("m.mid").observe(0.5);
  const std::string r1 = reg.render();
  const std::string r2 = reg.render();
  EXPECT_EQ(r1, r2);
  EXPECT_LT(r1.find("a.first"), r1.find("z.last"));
  EXPECT_NE(r1.find("m.mid"), std::string::npos);
}

TEST(MetricsRegistryTest, ClearEmpties) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  reg.histogram("h").observe(1);
  reg.clear();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.histograms().empty());
}

}  // namespace
}  // namespace argus::obs
