#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace argus::obs {
namespace {

TEST(CounterTest, IncrementsByDelta) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(4.0);
  h.observe(10.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  // underflow, (1,2], (2,5], overflow
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

TEST(HistogramTest, PercentilesAreMonotoneAndClamped) {
  Histogram h({0.1, 0.2, 0.5, 1.0, 2.0, 5.0});
  for (int i = 1; i <= 100; ++i) h.observe(0.03 * i);  // 0.03 .. 3.0
  const double p50 = h.p50(), p95 = h.p95(), p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  // True median is ~1.5; bucket interpolation should land in (1.0, 2.0].
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
}

TEST(HistogramTest, SingleValuePercentile) {
  Histogram h;
  h.observe(0.08);
  EXPECT_DOUBLE_EQ(h.p50(), 0.08);
  EXPECT_DOUBLE_EQ(h.p99(), 0.08);
}

TEST(HistogramTest, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
}

TEST(MetricsRegistryTest, FindOrCreateSemantics) {
  MetricsRegistry reg;
  reg.counter("a").inc(3);
  reg.counter("a").inc(4);
  EXPECT_EQ(reg.counter("a").value(), 7u);

  reg.histogram("h", {1.0, 2.0}).observe(1.5);
  reg.histogram("h").observe(1.7);  // reuses the fixed layout
  EXPECT_EQ(reg.histogram("h").count(), 2u);
  EXPECT_EQ(reg.histogram("h").bounds().size(), 2u);

  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  ASSERT_NE(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_counter("a")->value(), 7u);
}

TEST(MetricsRegistryTest, RenderIsDeterministicAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.last").inc(1);
  reg.counter("a.first").inc(2);
  reg.histogram("m.mid").observe(0.5);
  const std::string r1 = reg.render();
  const std::string r2 = reg.render();
  EXPECT_EQ(r1, r2);
  EXPECT_LT(r1.find("a.first"), r1.find("z.last"));
  EXPECT_NE(r1.find("m.mid"), std::string::npos);
}

TEST(MetricsRegistryTest, ClearEmpties) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  reg.histogram("h").observe(1);
  reg.clear();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.histograms().empty());
}


TEST(HistogramMergeTest, BucketwiseAndStatsExact) {
  Histogram a({1.0, 10.0, 100.0});
  Histogram b({1.0, 10.0, 100.0});
  a.observe(0.5);
  a.observe(5);
  b.observe(50);
  b.observe(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 555.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 500);
  EXPECT_EQ(a.buckets(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
}

TEST(HistogramMergeTest, MergingEmptyIsIdentity) {
  Histogram a, empty;
  a.observe(3);
  const auto before = a.buckets();
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.buckets(), before);
  EXPECT_DOUBLE_EQ(a.min(), 3);
  // Empty absorbs too: min/max come from the non-empty side.
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.min(), 3);
  EXPECT_DOUBLE_EQ(empty.max(), 3);
}

TEST(HistogramMergeTest, MismatchedBoundsThrow) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  Histogram c({1.0, 2.0, 3.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(HistogramMergeTest, MergeIsAssociativeForCounts) {
  // ((a+b)+c) and (a+(b+c)) agree bucket-for-bucket and in count/sum.
  const auto mk = [](std::initializer_list<double> xs) {
    Histogram h({1.0, 10.0});
    for (double x : xs) h.observe(x);
    return h;
  };
  Histogram left_a = mk({0.5, 2}), b1 = mk({20}), c1 = mk({5, 0.1});
  left_a.merge(b1);
  left_a.merge(c1);
  Histogram right_b = mk({20}), right_a = mk({0.5, 2});
  right_b.merge(mk({5, 0.1}));
  right_a.merge(right_b);
  EXPECT_EQ(left_a.buckets(), right_a.buckets());
  EXPECT_EQ(left_a.count(), right_a.count());
  EXPECT_DOUBLE_EQ(left_a.sum(), right_a.sum());
  EXPECT_DOUBLE_EQ(left_a.min(), right_a.min());
  EXPECT_DOUBLE_EQ(left_a.max(), right_a.max());
}

TEST(MetricsRegistryMergeTest, MergeFromAccumulatesAndCreates) {
  MetricsRegistry a, b;
  a.counter("shared").inc(2);
  b.counter("shared").inc(3);
  b.counter("only_b").inc(1);
  b.histogram("h", {1.0, 2.0}).observe(1.5);
  a.merge_from(b);
  EXPECT_EQ(a.find_counter("shared")->value(), 5u);
  EXPECT_EQ(a.find_counter("only_b")->value(), 1u);
  // The created histogram adopts the source's bucket layout.
  ASSERT_NE(a.find_histogram("h"), nullptr);
  EXPECT_EQ(a.find_histogram("h")->bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(a.find_histogram("h")->count(), 1u);
}

TEST(MetricsRegistryMergeTest, MergeFromRejectsMismatchedBounds) {
  MetricsRegistry a, b;
  a.histogram("h", {1.0, 2.0}).observe(1);
  b.histogram("h", {5.0, 6.0}).observe(5.5);
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

}  // namespace
}  // namespace argus::obs
