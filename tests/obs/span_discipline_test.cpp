// Chaos regression gate: nodes that crash, reboot, straggle or turn
// Byzantine mid-protocol must still close every span they opened. A crash
// that interrupts a compute span and leaks a dangling kBegin would poison
// every downstream consumer — traceview's nesting-based self-time
// attribution, the chrome://tracing export, and the golden digest's
// canonical span list all assume well-formed begin/end pairing per node.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/sweep.hpp"
#include "obs/trace.hpp"

namespace argus {
namespace {

harness::SweepPoint chaos_point(double crash, double reboot_ms,
                                double straggle, double byzantine) {
  harness::SweepPoint p;
  p.level = 2;
  p.objects = 10;
  p.seed = 17;  // pinned: produces real crashes (see bench_fig_churn)
  p.crash = crash;
  p.reboot_ms = reboot_ms;
  p.straggle = straggle;
  p.byzantine = byzantine;
  return p;
}

std::vector<harness::RunResult> run_kept(
    const std::vector<harness::SweepPoint>& grid) {
  return harness::SweepRunner({.threads = 1, .keep_traces = true}).run(grid);
}

TEST(SpanDisciplineTest, CrashAndRebootMidSpanLeaveBalancedTrace) {
  const auto results = run_kept({chaos_point(0.5, 900, 0.0, 0.0)});
  ASSERT_TRUE(results[0].trace.has_value());
  const obs::Tracer& trace = *results[0].trace;

  // The cell must actually exercise the fault path, else this gate tests
  // nothing.
  bool saw_crash = false;
  for (const auto& ev : trace.events()) {
    if (ev.name == "fault.crash") saw_crash = true;
  }
  ASSERT_TRUE(saw_crash) << "pinned seed no longer produces crashes";

  EXPECT_EQ(trace.open_spans(), 0u);
  EXPECT_TRUE(trace.well_formed());
}

TEST(SpanDisciplineTest, StragglersAndByzantinesKeepSpansBalanced) {
  const auto results = run_kept(
      {chaos_point(0.0, -1, 0.4, 0.0), chaos_point(0.0, -1, 0.0, 1.0)});
  for (const auto& res : results) {
    ASSERT_TRUE(res.trace.has_value());
    EXPECT_EQ(res.trace->open_spans(), 0u) << res.label;
    EXPECT_TRUE(res.trace->well_formed()) << res.label;
  }
}

TEST(SpanDisciplineTest, BalanceSurvivesExportRoundTrip) {
  const auto results = run_kept({chaos_point(0.5, 900, 0.0, 0.0)});
  std::ostringstream os;
  obs::write_jsonl(*results[0].trace, os);

  std::istringstream is(os.str());
  obs::Tracer back;
  ASSERT_TRUE(obs::read_jsonl(is, back));
  EXPECT_TRUE(back.well_formed());
  EXPECT_EQ(back.spans().size(), results[0].trace->spans().size());
}

}  // namespace
}  // namespace argus
