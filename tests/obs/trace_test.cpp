#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace argus::obs {
namespace {

TEST(TracerTest, SpansNestPerNode) {
  Tracer t;
  t.begin(1.0, 7, "outer", "phase", 100);
  t.begin(1.5, 7, "inner", "compute");
  t.end(2.0, 7);
  t.end(3.0, 7, 0, 2);
  EXPECT_TRUE(t.well_formed());
  EXPECT_EQ(t.open_spans(), 0u);

  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 2u);
  // spans() reports in begin order.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_DOUBLE_EQ(spans[0].ts, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].dur, 2.0);
  EXPECT_EQ(spans[0].a, 100u);
  EXPECT_EQ(spans[0].b, 2u);  // end's b overrides
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_DOUBLE_EQ(spans[1].dur, 0.5);
}

TEST(TracerTest, NodesInterleaveIndependently) {
  Tracer t;
  t.begin(0.0, 1, "a", "phase");
  t.begin(0.5, 2, "b", "phase");
  t.end(1.0, 1);
  t.end(2.0, 2);
  EXPECT_TRUE(t.well_formed());
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].node, 1u);
  EXPECT_EQ(spans[1].node, 2u);
}

TEST(TracerTest, OrphanEndBreaksWellFormedness) {
  Tracer t;
  t.end(1.0, 3);
  EXPECT_FALSE(t.well_formed());
}

TEST(TracerTest, UnclosedSpanBreaksWellFormedness) {
  Tracer t;
  t.begin(1.0, 3, "open", "phase");
  EXPECT_EQ(t.open_spans(), 1u);
  EXPECT_FALSE(t.well_formed());
  t.end(2.0, 3);
  EXPECT_TRUE(t.well_formed());
}

TEST(TracerTest, NegativeDurationBreaksWellFormedness) {
  Tracer t;
  t.begin(5.0, 1, "x", "phase");
  t.end(4.0, 1);
  EXPECT_FALSE(t.well_formed());
}

TEST(TracerTest, ClearResets) {
  Tracer t;
  t.begin(1.0, 1, "x", "phase");
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.open_spans(), 0u);
  EXPECT_TRUE(t.well_formed());
}

TEST(TraceIoTest, JsonlRoundTripsEveryField) {
  Tracer t;
  t.instant(0.125, 4, "node", "meta", 3, 2, "kiosk");
  t.begin(1.0, 4, "handle.QUE2", "phase", 321);
  t.instant(1.5, 4, "tx.RES2", "net", 256, 3);
  t.end(2.25, 4, 0, 3);
  t.instant(3.0, 1, "weird \"name\"\n\t\\", "net", 0, 0, "id with \"quotes\"");

  std::ostringstream os;
  write_jsonl(t, os);

  Tracer back;
  std::istringstream is(os.str());
  ASSERT_TRUE(read_jsonl(is, back));
  EXPECT_EQ(back.events(), t.events());
  EXPECT_TRUE(back.well_formed());

  // Re-serialising the loaded trace is byte-identical.
  std::ostringstream os2;
  write_jsonl(back, os2);
  EXPECT_EQ(os2.str(), os.str());
}

TEST(TraceIoTest, ReadRejectsMalformedLine) {
  Tracer back;
  std::istringstream is("{\"k\":\"B\",\"ts\":not-a-number}\n");
  EXPECT_FALSE(read_jsonl(is, back));
}

TEST(TraceIoTest, ChromeExportShape) {
  Tracer t;
  t.instant(0.0, 2, "node", "meta", 2, 1, "printer");
  t.begin(1.0, 2, "handle.QUE1", "phase");
  t.end(2.5, 2);

  std::ostringstream os;
  write_chrome_json(t, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Node meta instants become thread names for the Perfetto track list.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("printer"), std::string::npos);
  // Timestamps are exported in microseconds: begin at 1.0ms -> 1000us.
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
}

}  // namespace
}  // namespace argus::obs
