#include "obs/bench_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/prof.hpp"

namespace argus::obs::bench {
namespace {

BenchEntry entry_with(std::map<std::string, Metric> metrics) {
  BenchEntry e;
  e.git_sha = "deadbeef";
  e.date_utc = "2026-01-01T00:00:00Z";
  e.threads = 2;
  e.cpus = 4;
  e.metrics = std::move(metrics);
  return e;
}

Metric vm(double value, bool lower_is_better = true) {
  return Metric{value, "ms", "virtual", lower_is_better};
}

TEST(TrajectoryIoTest, RoundTripsThroughSerialization) {
  Trajectory t;
  t.name = "fig6e";
  t.entries.push_back(entry_with({{"virtual.total_ms", vm(123.5)},
                                  {"wall.rate", {9.25, "ops/s", "wall",
                                                 false}}}));
  std::ostringstream os;
  write_trajectory(os, t);

  std::istringstream is(os.str());
  std::string error;
  const auto back = load_trajectory(is, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->schema, kSchemaVersion);
  EXPECT_EQ(back->name, "fig6e");
  ASSERT_EQ(back->entries.size(), 1u);
  const auto& e = back->entries[0];
  EXPECT_EQ(e.git_sha, "deadbeef");
  EXPECT_EQ(e.threads, 2u);
  EXPECT_DOUBLE_EQ(e.metrics.at("virtual.total_ms").value, 123.5);
  EXPECT_EQ(e.metrics.at("wall.rate").source, "wall");
  EXPECT_FALSE(e.metrics.at("wall.rate").lower_is_better);
}

TEST(TrajectoryIoTest, RejectsMalformedAndWrongSchema) {
  std::string error;
  std::istringstream garbage("not json at all");
  EXPECT_FALSE(load_trajectory(garbage, &error).has_value());
  EXPECT_FALSE(error.empty());

  std::istringstream wrong_schema(
      R"({"schema":99,"name":"x","entries":[]})");
  EXPECT_FALSE(load_trajectory(wrong_schema, &error).has_value());
}

TEST(BenchReporterTest, AppendCreatesAndExtendsTrajectory) {
  const std::string path = testing::TempDir() + "/BENCH_apptest.json";
  std::remove(path.c_str());

  BenchReporter first("apptest");
  first.metric("virtual.x", 1.0, "ms", "virtual");
  std::string error;
  ASSERT_TRUE(first.append_to(path, &error)) << error;

  BenchReporter second("apptest");
  second.metric("virtual.x", 2.0, "ms", "virtual");
  ASSERT_TRUE(second.append_to(path, &error)) << error;

  std::ifstream in(path);
  const auto t = load_trajectory(in, &error);
  ASSERT_TRUE(t.has_value()) << error;
  ASSERT_EQ(t->entries.size(), 2u);
  EXPECT_DOUBLE_EQ(t->entries[0].metrics.at("virtual.x").value, 1.0);
  EXPECT_DOUBLE_EQ(t->entries[1].metrics.at("virtual.x").value, 2.0);
  std::remove(path.c_str());
}

TEST(BenchReporterTest, AppendRefusesForeignTrajectory) {
  const std::string path = testing::TempDir() + "/BENCH_foreign.json";
  std::remove(path.c_str());
  BenchReporter mine("mine");
  ASSERT_TRUE(mine.append_to(path));
  BenchReporter other("other");
  std::string error;
  EXPECT_FALSE(other.append_to(path, &error));
  EXPECT_NE(error.find("mine"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchReporterTest, AddProfileEmitsWallSelfTimes) {
  prof::Profiler profiler;
  {
    prof::Profiler::Attach attach(profiler, 0);
    ARGUS_PROF_SCOPE("crypto.op");
  }
  BenchReporter reporter("p");
  reporter.add_profile(profiler);
  const auto& metrics = reporter.entry().metrics;
  const auto it = metrics.find("wall.self_ms.crypto.op");
  ASSERT_NE(it, metrics.end());
  EXPECT_EQ(it->second.source, "wall");
}

// --------------------------------------------------------------------------
// Diff engine verdicts — the benchdiff CLI's exit codes ride on these.

const DiffThresholds kDefault{};  // warn 10%, fail 30%, wall ungated

TEST(DiffTest, OkWithinThresholds) {
  const auto before = entry_with({{"virtual.t", vm(100)}});
  const auto after = entry_with({{"virtual.t", vm(105)}});
  const auto result = compare_entries(before, after, kDefault);
  EXPECT_EQ(result.verdict, Verdict::kOk);
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_NEAR(result.deltas[0].regress_pct, 5.0, 1e-9);
}

TEST(DiffTest, WarnPastWarnThreshold) {
  const auto before = entry_with({{"virtual.t", vm(100)}});
  const auto after = entry_with({{"virtual.t", vm(115)}});
  const auto result = compare_entries(before, after, kDefault);
  EXPECT_EQ(result.verdict, Verdict::kWarn);
  EXPECT_EQ(result.deltas[0].severity, Verdict::kWarn);
}

TEST(DiffTest, FailPastFailThreshold) {
  const auto before = entry_with({{"virtual.t", vm(100)}});
  const auto after = entry_with({{"virtual.t", vm(140)}});
  const auto result = compare_entries(before, after, kDefault);
  EXPECT_EQ(result.verdict, Verdict::kFail);
}

TEST(DiffTest, DirectionAware) {
  // For a higher-is-better metric, a *drop* is the regression.
  const auto before =
      entry_with({{"virtual.rate", vm(100, /*lower_is_better=*/false)}});
  const auto up = entry_with({{"virtual.rate", vm(140, false)}});
  EXPECT_EQ(compare_entries(before, up, kDefault).verdict, Verdict::kOk);
  const auto down = entry_with({{"virtual.rate", vm(60, false)}});
  EXPECT_EQ(compare_entries(before, down, kDefault).verdict, Verdict::kFail);
}

TEST(DiffTest, WallMetricsInformationalUnlessGated) {
  const auto before = entry_with({{"wall.t", {100, "ms", "wall", true}}});
  const auto after = entry_with({{"wall.t", {300, "ms", "wall", true}}});
  const auto ungated = compare_entries(before, after, kDefault);
  EXPECT_EQ(ungated.verdict, Verdict::kOk);
  ASSERT_EQ(ungated.deltas.size(), 1u);
  EXPECT_FALSE(ungated.deltas[0].gated);

  DiffThresholds gated = kDefault;
  gated.gate_wall = true;
  EXPECT_EQ(compare_entries(before, after, gated).verdict, Verdict::kFail);
}

TEST(DiffTest, MetricOnlyInOneEntryIsReportedNotGated) {
  const auto before = entry_with({{"virtual.old", vm(1)}});
  const auto after = entry_with({{"virtual.new", vm(1)}});
  const auto result = compare_entries(before, after, kDefault);
  EXPECT_EQ(result.verdict, Verdict::kOk);
  ASSERT_EQ(result.deltas.size(), 2u);
  EXPECT_TRUE(result.deltas[0].only_in_one);
  EXPECT_TRUE(result.deltas[1].only_in_one);
}

TEST(DiffTest, TrajectoryNameMismatchIsSchemaMismatch) {
  Trajectory a, b;
  a.name = "fig6e";
  b.name = "fig6g";
  a.entries.push_back(entry_with({}));
  b.entries.push_back(entry_with({}));
  const auto result = compare_trajectories(a, &b, kDefault);
  EXPECT_EQ(result.verdict, Verdict::kSchemaMismatch);
  EXPECT_FALSE(result.error.empty());
}

TEST(DiffTest, SingleEntryIsBaselineNotError) {
  // A freshly seeded trajectory has exactly one entry: that is the
  // baseline, not a pipeline failure. Zero entries is still an error —
  // a comparison was requested and there is nothing at all.
  Trajectory t;
  t.name = "solo";
  EXPECT_EQ(compare_trajectories(t, nullptr, kDefault).verdict,
            Verdict::kSchemaMismatch);
  t.entries.push_back(entry_with({{"virtual.t", vm(100)}}));
  const auto baseline = compare_trajectories(t, nullptr, kDefault);
  EXPECT_EQ(baseline.verdict, Verdict::kBaseline);
  EXPECT_TRUE(baseline.error.empty());
  t.entries.push_back(entry_with({{"virtual.t", vm(150)}}));
  EXPECT_EQ(compare_trajectories(t, nullptr, kDefault).verdict,
            Verdict::kFail);
}

TEST(DiffTest, EmptyBeforeFileIsBaseline) {
  // Two-file mode, before-file present but never written to: the after
  // entry is the first real measurement. An empty *after* is an error.
  Trajectory before, after;
  before.name = after.name = "fresh";
  after.entries.push_back(entry_with({{"virtual.t", vm(100)}}));
  EXPECT_EQ(compare_trajectories(before, &after, kDefault).verdict,
            Verdict::kBaseline);
  EXPECT_EQ(compare_trajectories(after, &before, kDefault).verdict,
            Verdict::kSchemaMismatch);
}

TEST(DiffTest, BaselineReportPrintsNote) {
  Trajectory t;
  t.name = "solo";
  t.entries.push_back(entry_with({{"virtual.t", vm(100)}}));
  const auto result = compare_trajectories(t, nullptr, kDefault);
  std::ostringstream os;
  write_diff_report(os, result);
  EXPECT_NE(os.str().find("baseline recorded"), std::string::npos);
}

TEST(DiffTest, ReportNamesVerdictAndMetrics) {
  const auto before = entry_with({{"virtual.t", vm(100)}});
  const auto after = entry_with({{"virtual.t", vm(120)}});
  const auto result = compare_entries(before, after, kDefault);
  std::ostringstream os;
  write_diff_report(os, result);
  const std::string out = os.str();
  EXPECT_NE(out.find("virtual.t"), std::string::npos);
  EXPECT_NE(out.find(verdict_name(Verdict::kWarn)), std::string::npos);
}

}  // namespace
}  // namespace argus::obs::bench
