// Object-side admission control: deterministic token buckets in front of
// the expensive RES1/RES2 crypto, cheap checks first, sheds leave no
// session state behind. Off by default — the last test pins that the
// disabled path is truly untouched.
#include <gtest/gtest.h>

#include "argus/object_engine.hpp"
#include "obs/metrics.hpp"

namespace argus::core {
namespace {

using backend::AttributeMap;
using backend::Backend;
using backend::Level;

class AdmissionFixture : public ::testing::Test {
 protected:
  AdmissionFixture() : be_(crypto::Strength::b128, 4077) {
    tv_ = be_.register_object(
        "tv-1", AttributeMap{{"type", "multimedia"}}, Level::kL2, {},
        {{"position=='employee'", "staff", {"play"}}});
  }

  ObjectEngine make_object(AdmissionParams admission,
                           obs::MetricsRegistry* metrics = nullptr) {
    ObjectEngineConfig cfg;
    cfg.creds = tv_;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = 6;
    cfg.admission = admission;
    cfg.metrics = metrics;
    return ObjectEngine(std::move(cfg));
  }

  /// A fresh, well-formed QUE1 (each call a distinct R_S).
  Bytes que1() { return encode(Message{Que1{rng_.generate(kNonceSize)}}); }

  Backend be_;
  backend::ObjectCredentials tv_;
  crypto::HmacDrbg rng_ = crypto::make_rng(9, "admission-test");
};

AdmissionParams small_bucket() {
  AdmissionParams adm;
  adm.enabled = true;
  adm.peer_rate_per_s = 1.0;
  adm.peer_burst = 2.0;
  adm.global_rate_per_s = 100.0;
  adm.global_burst = 100.0;
  return adm;
}

TEST_F(AdmissionFixture, BurstThenRateLimited) {
  auto o = make_object(small_bucket());
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
  const auto third = o.handle(que1(), be_.now(), 7);
  EXPECT_EQ(third.status, HandleStatus::kRateLimited);
  EXPECT_FALSE(third.reply.has_value());  // shed silently, no error traffic
  EXPECT_EQ(o.stats().rate_limited, 1u);
  EXPECT_EQ(o.stats().shed_overload, 0u);
  // Shed is a load decision, not a verdict on the message: it must be
  // retryable, so it is neither kOk nor a protocol rejection.
  EXPECT_TRUE(is_shed(third.status));
  EXPECT_FALSE(is_reject(third.status));
}

TEST_F(AdmissionFixture, BucketRefillsOnVirtualClock) {
  auto o = make_object(small_bucket());
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status,
            HandleStatus::kRateLimited);
  // 1 token/s: two virtual seconds later, two more queries pass.
  o.advance_clock(2000.0);
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status,
            HandleStatus::kRateLimited);
}

TEST_F(AdmissionFixture, PeersAreIsolated) {
  auto o = make_object(small_bucket());
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status,
            HandleStatus::kRateLimited);
  // A hostile peer draining its own bucket must not starve anyone else.
  EXPECT_EQ(o.handle(que1(), be_.now(), 8).status, HandleStatus::kOk);
}

TEST_F(AdmissionFixture, GlobalBudgetShedsAcrossPeers) {
  AdmissionParams adm;
  adm.enabled = true;
  adm.peer_rate_per_s = 100.0;  // per-peer never trips here
  adm.peer_burst = 100.0;
  adm.global_rate_per_s = 1.0;
  adm.global_burst = 2.0;
  auto o = make_object(adm);
  EXPECT_EQ(o.handle(que1(), be_.now(), 1).status, HandleStatus::kOk);
  EXPECT_EQ(o.handle(que1(), be_.now(), 2).status, HandleStatus::kOk);
  // Distinct peers, so only the engine-wide budget can refuse this one.
  EXPECT_EQ(o.handle(que1(), be_.now(), 3).status,
            HandleStatus::kShedOverload);
  EXPECT_EQ(o.stats().shed_overload, 1u);
  EXPECT_EQ(o.stats().rate_limited, 0u);
}

TEST_F(AdmissionFixture, OversizedWireRefusedBeforeDecode) {
  AdmissionParams adm = small_bucket();
  adm.max_wire_bytes = 64;
  auto o = make_object(adm);
  (void)o.take_consumed_ms();
  const auto res = o.handle(Bytes(1000, 0x55), be_.now(), 7);
  EXPECT_EQ(res.status, HandleStatus::kMalformed);
  EXPECT_EQ(o.stats().drops, 1u);
  EXPECT_EQ(o.take_consumed_ms(), 0.0);  // no crypto was charged
  // The length check is a format verdict, not admission: no token spent,
  // so a well-formed query still passes afterwards.
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
}

TEST_F(AdmissionFixture, ShedLeavesNoSessionState) {
  AdmissionParams adm = small_bucket();
  adm.peer_burst = 1.0;
  auto o = make_object(adm);
  EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
  EXPECT_EQ(o.open_sessions(), 1u);
  const Bytes retry_wire = que1();
  EXPECT_EQ(o.handle(retry_wire, be_.now(), 7).status,
            HandleStatus::kRateLimited);
  EXPECT_EQ(o.open_sessions(), 1u);  // the shed opened nothing
  // The subject's backed-off retry of the SAME R_S must read as fresh —
  // a shed that left replay-detection state behind would turn every
  // retry into kStale and make overload unrecoverable.
  o.advance_clock(2000.0);
  EXPECT_EQ(o.handle(retry_wire, be_.now(), 7).status, HandleStatus::kOk);
  EXPECT_EQ(o.open_sessions(), 2u);
}

TEST_F(AdmissionFixture, DuplicateSettlesBeforeAdmission) {
  AdmissionParams adm = small_bucket();
  adm.peer_burst = 1.0;
  auto o = make_object(adm);
  const Bytes wire = que1();
  const auto first = o.handle(wire, be_.now(), 7);
  EXPECT_EQ(first.status, HandleStatus::kOk);
  // The duplicate resend is a cached byte-for-byte reply — free, so it
  // must not be charged a token (the bucket is already empty here).
  const auto dup = o.handle(wire, be_.now(), 7);
  EXPECT_EQ(dup.status, HandleStatus::kDuplicate);
  EXPECT_EQ(dup.reply, first.reply);
  EXPECT_EQ(o.stats().rate_limited, 0u);
}

TEST_F(AdmissionFixture, PeerTableIsBoundedWithLruEviction) {
  obs::MetricsRegistry metrics;
  AdmissionParams adm;
  adm.enabled = true;
  adm.peer_capacity = 2;
  auto o = make_object(adm, &metrics);
  for (std::uint64_t peer = 1; peer <= 6; ++peer) {
    EXPECT_EQ(o.handle(que1(), be_.now(), peer).status, HandleStatus::kOk);
  }
  const auto* evicted = metrics.find_counter("object.admission.peer_evicted");
  ASSERT_NE(evicted, nullptr);
  EXPECT_EQ(evicted->value(), 4u);  // peers 3..6 each displaced the oldest
}

TEST_F(AdmissionFixture, DisabledAdmissionIsUntouched) {
  auto o = make_object(AdmissionParams{});  // enabled == false
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(o.handle(que1(), be_.now(), 7).status, HandleStatus::kOk);
  }
  EXPECT_EQ(o.stats().rate_limited, 0u);
  EXPECT_EQ(o.stats().shed_overload, 0u);
}

}  // namespace
}  // namespace argus::core
