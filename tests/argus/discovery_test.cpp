// Simulated end-to-end discovery: the paper's testbed shape (1 subject,
// up to 20 objects, 1-4 hops) on the discrete-event ground network.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "argus/discovery.hpp"
#include "harness/digest.hpp"

namespace argus::core {
namespace {

using backend::AttributeMap;
using backend::Backend;
using backend::Level;

struct Fleet {
  std::unique_ptr<Backend> be;
  backend::SubjectCredentials subject;
  std::vector<ScenarioObject> objects;
};

/// Build a testbed: `n` objects of the given level, all at `hops`.
Fleet make_fleet(std::size_t n, Level level, unsigned hops = 1) {
  Fleet f;
  f.be = std::make_unique<Backend>(crypto::Strength::b128, 11);
  f.subject = f.be->register_subject(
      "alice", AttributeMap{{"position", "employee"}}, {"support"});
  for (std::size_t i = 0; i < n; ++i) {
    const std::string id = "obj-" + std::to_string(i);
    backend::ObjectCredentials creds;
    switch (level) {
      case Level::kL1:
        creds = f.be->register_object(id, AttributeMap{{"type", "sensor"}},
                                      Level::kL1, {"read"});
        break;
      case Level::kL2:
        creds = f.be->register_object(
            id, AttributeMap{{"type", "multimedia"}}, Level::kL2, {},
            {{"position=='employee'", "staff", {"use"}}});
        break;
      case Level::kL3:
        creds = f.be->register_object(
            id, AttributeMap{{"type", "kiosk"}}, Level::kL3, {},
            {{"position=='employee'", "staff", {"use"}}},
            {{"support", "covert", {"use", "support"}}});
        break;
    }
    f.objects.push_back(ScenarioObject{std::move(creds), hops});
  }
  return f;
}

DiscoveryScenario scenario_for(const Fleet& f) {
  DiscoveryScenario sc;
  sc.subject = f.subject;
  sc.admin_pub = f.be->admin_public_key();
  sc.objects = f.objects;
  sc.epoch = f.be->now();
  return sc;
}

TEST(DiscoveryTest, Level1TwentyObjectsDiscovered) {
  const Fleet f = make_fleet(20, Level::kL1);
  const auto report = run_discovery(scenario_for(f));
  EXPECT_EQ(report.services.size(), 20u);
  EXPECT_EQ(report.count_level(1), 20u);
  // Paper Fig 6(e): ~0.25 s for 20 Level 1 objects. Allow generous band.
  EXPECT_GT(report.total_ms, 120);
  EXPECT_LT(report.total_ms, 450);
}

TEST(DiscoveryTest, Level2TwentyObjectsDiscovered) {
  const Fleet f = make_fleet(20, Level::kL2);
  const auto report = run_discovery(scenario_for(f));
  EXPECT_EQ(report.count_level(2), 20u);
  // Paper: ~0.63 s.
  EXPECT_GT(report.total_ms, 450);
  EXPECT_LT(report.total_ms, 900);
}

TEST(DiscoveryTest, Level3TwentyObjectsDiscoveredCovertly) {
  const Fleet f = make_fleet(20, Level::kL3);
  const auto report = run_discovery(scenario_for(f));
  EXPECT_EQ(report.count_level(3), 20u);
  EXPECT_GT(report.total_ms, 450);
  EXPECT_LT(report.total_ms, 900);
}

TEST(DiscoveryTest, Level2And3TimesOverlap) {
  // Fig 6(e): Level 2 and Level 3 curves overlap — the timing signature
  // of indistinguishability at fleet scale.
  const Fleet f2 = make_fleet(10, Level::kL2);
  const Fleet f3 = make_fleet(10, Level::kL3);
  const auto r2 = run_discovery(scenario_for(f2));
  const auto r3 = run_discovery(scenario_for(f3));
  EXPECT_NEAR(r2.total_ms, r3.total_ms, 0.12 * r2.total_ms);
}

TEST(DiscoveryTest, TimeGrowsWithObjectCount) {
  double prev = 0;
  for (std::size_t n : {5u, 10u, 20u}) {
    const Fleet f = make_fleet(n, Level::kL2);
    const auto report = run_discovery(scenario_for(f));
    EXPECT_EQ(report.services.size(), n);
    EXPECT_GT(report.total_ms, prev);
    prev = report.total_ms;
  }
}

TEST(DiscoveryTest, MultiHopCostsMore) {
  const Fleet near = make_fleet(20, Level::kL2, 1);
  Fleet mixed = make_fleet(20, Level::kL2, 1);
  for (std::size_t i = 0; i < mixed.objects.size(); ++i) {
    mixed.objects[i].hops = static_cast<unsigned>(1 + i / 5);  // 5 per ring
  }
  const auto r_near = run_discovery(scenario_for(near));
  const auto r_mixed = run_discovery(scenario_for(mixed));
  EXPECT_EQ(r_mixed.services.size(), 20u);
  // Paper Fig 6(g): 0.63 s single-hop -> 1.15 s multi-hop.
  EXPECT_GT(r_mixed.total_ms, 1.2 * r_near.total_ms);
}

TEST(DiscoveryTest, SingleObjectLatencyByHops) {
  // Fig 6(h): latency grows roughly linearly with hop count.
  std::vector<double> times;
  for (unsigned hops : {1u, 2u, 3u, 4u}) {
    const Fleet f = make_fleet(1, Level::kL1, hops);
    times.push_back(run_discovery(scenario_for(f)).total_ms);
  }
  EXPECT_LT(times[0], times[1]);
  EXPECT_LT(times[1], times[2]);
  EXPECT_LT(times[2], times[3]);
  // 4-hop should be roughly 3-4.5x the 1-hop latency (paper: 0.13->0.53 s).
  EXPECT_GT(times[3], 2.5 * times[0]);
  EXPECT_LT(times[3], 5.5 * times[0]);
}

TEST(DiscoveryTest, MixedFleetConcurrentLevels) {
  // 3-in-1: one round discovers L1, L2, L3 services concurrently.
  Fleet f = make_fleet(4, Level::kL1);
  Fleet f2 = make_fleet(3, Level::kL2);
  Fleet f3 = make_fleet(2, Level::kL3);
  // Rebuild in one backend so credentials share an admin.
  Backend be(crypto::Strength::b128, 12);
  auto subject = be.register_subject(
      "alice", AttributeMap{{"position", "employee"}}, {"support"});
  std::vector<ScenarioObject> objs;
  for (int i = 0; i < 4; ++i) {
    objs.push_back({be.register_object("l1-" + std::to_string(i), {},
                                       Level::kL1, {"read"}),
                    1});
  }
  for (int i = 0; i < 3; ++i) {
    objs.push_back({be.register_object(
                        "l2-" + std::to_string(i), {}, Level::kL2, {},
                        {{"position=='employee'", "staff", {"use"}}}),
                    1});
  }
  for (int i = 0; i < 2; ++i) {
    objs.push_back({be.register_object(
                        "l3-" + std::to_string(i), {}, Level::kL3, {},
                        {{"position=='employee'", "staff", {"use"}}},
                        {{"support", "covert", {"support"}}}),
                    1});
  }
  DiscoveryScenario sc;
  sc.subject = subject;
  sc.admin_pub = be.admin_public_key();
  sc.objects = objs;
  sc.epoch = be.now();
  const auto report = run_discovery(sc);
  EXPECT_EQ(report.count_level(1), 4u);
  EXPECT_EQ(report.count_level(2), 3u);
  EXPECT_EQ(report.count_level(3), 2u);
  EXPECT_EQ(report.timeline.size(), 9u);
  (void)f;
  (void)f2;
  (void)f3;
}

TEST(DiscoveryTest, ReportAccountsMessagesAndCompute) {
  const Fleet f = make_fleet(5, Level::kL2);
  const auto report = run_discovery(scenario_for(f));
  EXPECT_GT(report.bytes_by_msg.at("QUE1"), 0u);
  EXPECT_GT(report.bytes_by_msg.at("RES1"), 0u);
  EXPECT_GT(report.bytes_by_msg.at("QUE2"), 0u);
  EXPECT_GT(report.bytes_by_msg.at("RES2"), 0u);
  // Subject: ~27.4 ms per object + RES2 processing extras.
  EXPECT_NEAR(report.subject_compute_ms, 5 * 27.4, 5 * 8.0);
  EXPECT_NEAR(report.object_compute_ms, 5 * 78.2, 5 * 4.0);
  EXPECT_EQ(report.net_stats.messages, 1u + 3 * 5u);  // QUE1 + 3 per object
}

TEST(DiscoveryTest, DeterministicGivenSeed) {
  const Fleet f = make_fleet(8, Level::kL3);
  const auto r1 = run_discovery(scenario_for(f));
  const auto r2 = run_discovery(scenario_for(f));
  EXPECT_EQ(r1.total_ms, r2.total_ms);
  EXPECT_EQ(r1.net_stats.bytes, r2.net_stats.bytes);
}

TEST(DiscoveryTest, LossyDiscoveryCompletesWithRetries) {
  // At 10% per-hop loss the retry driver (kAuto) must still terminate and
  // the loss accounting must be internally consistent.
  const Fleet f = make_fleet(10, Level::kL2);
  DiscoveryScenario sc = scenario_for(f);
  sc.radio.drop_prob = 0.10;
  const auto report = run_discovery(sc);
  ASSERT_EQ(report.outcomes.size(), 10u);
  for (const auto& out : report.outcomes) {
    // Each object either made it or explicitly ran out of budget/deadline.
    if (!out.discovered) {
      EXPECT_TRUE(report.net_stats.dropped > 0);
    }
  }
  EXPECT_EQ(report.services.size(),
            static_cast<std::size_t>(
                std::count_if(report.outcomes.begin(), report.outcomes.end(),
                              [](const ObjectOutcome& o) { return o.discovered; })));
  // Delivery ratio must match the raw rx counters.
  const auto& ns = report.net_stats;
  if (ns.deliveries + ns.dropped > 0) {
    EXPECT_DOUBLE_EQ(report.delivery_ratio,
                     static_cast<double>(ns.deliveries) /
                         static_cast<double>(ns.deliveries + ns.dropped));
  }
  EXPECT_LE(report.delivery_ratio, 1.0);
  // Offered >= delivered under loss; equality only on a clean channel.
  EXPECT_GE(report.offered_messages, report.net_stats.messages);
  EXPECT_GE(report.offered_bytes, report.net_stats.bytes);
  // The round deadline bounds the run even in the worst case.
  EXPECT_LE(report.total_ms, sc.retry.round_deadline_ms);
}

TEST(DiscoveryTest, LossyDiscoveryIsDeterministic) {
  // Same seed + same RadioParams -> byte-identical report, drops included.
  const Fleet f = make_fleet(8, Level::kL3);
  DiscoveryScenario sc = scenario_for(f);
  sc.radio.drop_prob = 0.15;
  sc.radio.dup_prob = 0.05;
  const auto r1 = run_discovery(sc);
  const auto r2 = run_discovery(sc);
  EXPECT_EQ(r1.total_ms, r2.total_ms);
  EXPECT_EQ(r1.services.size(), r2.services.size());
  EXPECT_EQ(r1.net_stats.messages, r2.net_stats.messages);
  EXPECT_EQ(r1.net_stats.bytes, r2.net_stats.bytes);
  EXPECT_EQ(r1.net_stats.dropped, r2.net_stats.dropped);
  EXPECT_EQ(r1.net_stats.duplicates, r2.net_stats.duplicates);
  EXPECT_EQ(r1.offered_messages, r2.offered_messages);
  EXPECT_EQ(r1.offered_bytes, r2.offered_bytes);
  EXPECT_EQ(r1.que1_retransmits, r2.que1_retransmits);
  EXPECT_EQ(r1.que2_retransmits, r2.que2_retransmits);
  EXPECT_EQ(r1.delivery_ratio, r2.delivery_ratio);
  ASSERT_EQ(r1.timeline.size(), r2.timeline.size());
  for (std::size_t i = 0; i < r1.timeline.size(); ++i) {
    EXPECT_EQ(r1.timeline[i].object_id, r2.timeline[i].object_id);
    EXPECT_EQ(r1.timeline[i].at_ms, r2.timeline[i].at_ms);
  }
  ASSERT_EQ(r1.outcomes.size(), r2.outcomes.size());
  for (std::size_t i = 0; i < r1.outcomes.size(); ++i) {
    EXPECT_EQ(r1.outcomes[i].discovered, r2.outcomes[i].discovered);
    EXPECT_EQ(r1.outcomes[i].que2_retransmits, r2.outcomes[i].que2_retransmits);
  }
}

TEST(DiscoveryTest, RetryPathTraceDigestIsReplayable) {
  // The strongest determinism claim for the loss/retry layer: replaying a
  // lossy run (fixed seed, drop_prob > 0) yields a byte-identical golden
  // digest — every traced event, every counter (retransmits, drops,
  // timer-driven resends included), every report field.
  const Fleet f = make_fleet(6, Level::kL2);
  const auto one_run = [&f](core::DiscoveryReport* report_out) {
    DiscoveryScenario sc = scenario_for(f);
    sc.radio.drop_prob = 0.20;
    obs::Tracer trace;
    obs::MetricsRegistry metrics;
    sc.tracer = &trace;
    sc.metrics = &metrics;
    const auto report = run_discovery(sc);
    if (report_out) *report_out = report;
    return harness::golden_digest(trace, metrics, report);
  };
  core::DiscoveryReport r1, r2;
  const std::string d1 = one_run(&r1);
  const std::string d2 = one_run(&r2);
  EXPECT_EQ(d1, d2);
  // At 20% loss the run must actually have exercised the retry path —
  // otherwise the digest equality proves nothing about it.
  EXPECT_GT(r1.que1_retransmits + r1.que2_retransmits, 0u);
  EXPECT_EQ(r1.que1_retransmits, r2.que1_retransmits);
  EXPECT_EQ(r1.que2_retransmits, r2.que2_retransmits);
  EXPECT_GT(r1.net_stats.dropped, 0u);
  // And a different seed must visibly change the behaviour stream.
  DiscoveryScenario other = scenario_for(f);
  other.radio.drop_prob = 0.20;
  other.seed = 1234;
  obs::Tracer trace;
  obs::MetricsRegistry metrics;
  other.tracer = &trace;
  other.metrics = &metrics;
  const auto report = run_discovery(other);
  EXPECT_NE(harness::golden_digest(trace, metrics, report), d1);
}

TEST(DiscoveryTest, CleanChannelReportUnchangedByRetryLayer) {
  // kAuto on a lossless radio must leave the legacy driver untouched:
  // no retransmits, offered == delivered, ratio exactly 1.
  const Fleet f = make_fleet(6, Level::kL2);
  const auto report = run_discovery(scenario_for(f));
  EXPECT_EQ(report.que1_retransmits, 0u);
  EXPECT_EQ(report.que2_retransmits, 0u);
  EXPECT_EQ(report.offered_messages, report.net_stats.messages);
  EXPECT_EQ(report.offered_bytes, report.net_stats.bytes);
  EXPECT_DOUBLE_EQ(report.delivery_ratio, 1.0);
  for (const auto& out : report.outcomes) EXPECT_TRUE(out.discovered);
}

TEST(DiscoveryTest, TotalLossTimesOutGracefully) {
  // A fully opaque channel must not hang: the QUE1 retries burn their
  // budget, the deadline closes the round, every outcome reads timed-out,
  // and total_ms reports the real end of the run, not zero.
  const Fleet f = make_fleet(3, Level::kL2);
  DiscoveryScenario sc = scenario_for(f);
  sc.radio.drop_prob = 1.0;
  const auto report = run_discovery(sc);
  EXPECT_TRUE(report.services.empty());
  EXPECT_TRUE(report.timeline.empty());
  ASSERT_EQ(report.outcomes.size(), 3u);
  for (const auto& out : report.outcomes) EXPECT_FALSE(out.discovered);
  EXPECT_GT(report.total_ms, 0.0);
  EXPECT_LE(report.total_ms, sc.retry.round_deadline_ms);
  EXPECT_EQ(report.que1_retransmits, sc.retry.max_retries);
  EXPECT_DOUBLE_EQ(report.delivery_ratio, 0.0);
  EXPECT_EQ(report.net_stats.messages, 0u);  // nothing was ever delivered
  EXPECT_GT(report.offered_messages, 0u);
}

TEST(DiscoveryTest, EmptyRoundReportsElapsedTime) {
  // Satellite fix: a round that discovers nothing (silent-by-policy fleet)
  // used to report total_ms == 0 even though virtual time passed.
  Backend be(crypto::Strength::b128, 21);
  auto subject = be.register_subject("eve", AttributeMap{{"position", "guest"}});
  std::vector<ScenarioObject> objs;
  objs.push_back({be.register_object(
                      "locked", {}, Level::kL2, {},
                      {{"position=='employee'", "staff", {"use"}}}),
                  1});
  DiscoveryScenario sc;
  sc.subject = subject;
  sc.admin_pub = be.admin_public_key();
  sc.objects = objs;
  sc.epoch = be.now();
  const auto report = run_discovery(sc);
  EXPECT_TRUE(report.services.empty());
  EXPECT_GT(report.total_ms, 0.0);  // QUE1 + RES1 + QUE2 still traversed air
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_FALSE(report.outcomes[0].discovered);
}

TEST(DiscoveryTest, ZeroObjectRoundGuardsDerivedRatios) {
  // Degenerate but reachable (a fleet whose whole group churned away):
  // no responders means nothing is offered an ack, and every derived
  // ratio must stay finite instead of dividing by zero.
  Backend be(crypto::Strength::b128, 23);
  DiscoveryScenario sc;
  sc.subject = be.register_subject("alice",
                                   AttributeMap{{"position", "employee"}});
  sc.admin_pub = be.admin_public_key();
  sc.epoch = be.now();
  const auto report = run_discovery(sc);
  EXPECT_TRUE(report.services.empty());
  EXPECT_TRUE(report.outcomes.empty());
  EXPECT_TRUE(std::isfinite(report.delivery_ratio));
  EXPECT_GE(report.delivery_ratio, 0.0);
  EXPECT_LE(report.delivery_ratio, 1.0);
  EXPECT_TRUE(std::isfinite(report.total_ms));
  EXPECT_GE(report.total_ms, 0.0);
}

TEST(DiscoveryTest, FloodedDiscoveryCompletesAndSheds) {
  const Fleet f = make_fleet(5, Level::kL2);
  DiscoveryScenario sc = scenario_for(f);
  sc.flood.rate_per_s = 200;
  sc.admission.enabled = true;
  const auto report = run_discovery(sc);
  EXPECT_EQ(report.services.size(), 5u);  // the storm is shed, not served
  EXPECT_GT(report.shed_overload + report.rate_limited, 0u);
  for (const auto& oc : report.outcomes) EXPECT_TRUE(oc.discovered);
}

TEST(DiscoveryTest, FloodWithRetriesOffStillTerminates) {
  // An unbounded flood keeps the event queue nonempty forever; the round
  // driver must run to its deadline rather than draining to quiescence.
  const Fleet f = make_fleet(3, Level::kL2);
  DiscoveryScenario sc = scenario_for(f);
  sc.flood.rate_per_s = 100;
  sc.admission.enabled = true;
  sc.retry.mode = RetryMode::kOff;
  const auto report = run_discovery(sc);
  EXPECT_EQ(report.services.size(), 3u);
  EXPECT_LE(report.total_ms, sc.retry.round_deadline_ms);
}

TEST(DiscoveryTest, FloodFreeReportCarriesNoOverloadFields) {
  // Digest safety: without a flooder or bounded queues, none of the
  // overload machinery may leave a trace in the report.
  const Fleet f = make_fleet(3, Level::kL2);
  const auto report = run_discovery(scenario_for(f));
  EXPECT_EQ(report.shed_overload, 0u);
  EXPECT_EQ(report.rate_limited, 0u);
  EXPECT_EQ(report.net_stats.queue_rejected, 0u);
  EXPECT_EQ(report.net_stats.queue_evicted, 0u);
}

TEST(DiscoveryTest, RetryModeOffDisablesRecovery) {
  // Explicit kOff on a lossy channel: the run still terminates (nothing
  // retransmits, the queue simply drains) and losses go unrepaired.
  const Fleet f = make_fleet(5, Level::kL2);
  DiscoveryScenario sc = scenario_for(f);
  sc.radio.drop_prob = 0.4;
  sc.retry.mode = RetryMode::kOff;
  const auto report = run_discovery(sc);
  EXPECT_EQ(report.que1_retransmits, 0u);
  EXPECT_EQ(report.que2_retransmits, 0u);
  EXPECT_LT(report.delivery_ratio, 1.0);
}

fault::FaultEvent scripted(std::size_t object, fault::FaultKind kind,
                           double at_ms, double duration_ms = -1) {
  fault::FaultEvent ev;
  ev.object = object;
  ev.kind = kind;
  ev.at_ms = at_ms;
  ev.duration_ms = duration_ms;
  return ev;
}

TEST(DiscoveryTest, CrashMidRoundCannotStallRound) {
  // A node that dies before replying must not hang the round: the retry
  // driver's deadline bounds it, and the crash is attributed.
  const Fleet f = make_fleet(5, Level::kL2);
  DiscoveryScenario sc = scenario_for(f);
  sc.faults.scripted.push_back(
      scripted(2, fault::FaultKind::kCrash, 1));
  const auto report = run_discovery(sc);
  EXPECT_LE(report.total_ms, sc.retry.round_deadline_ms);
  EXPECT_EQ(report.services.size(), 4u);
  ASSERT_EQ(report.outcomes.size(), 5u);
  EXPECT_FALSE(report.outcomes[2].discovered);
  EXPECT_EQ(report.outcomes[2].reason, FailReason::kCrashed);
  for (const std::size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_TRUE(report.outcomes[i].discovered) << "object " << i;
  }
  EXPECT_EQ(report.fault_counts.at("crash"), 1u);
  EXPECT_GT(report.net_stats.fault_dropped, 0u);
}

TEST(DiscoveryTest, CrashWithRebootIsRediscovered) {
  // The node reboots with an empty session table; the QUE1 watchdog's
  // re-broadcast restarts its exchange from scratch.
  const Fleet f = make_fleet(3, Level::kL2);
  DiscoveryScenario sc = scenario_for(f);
  sc.faults.scripted.push_back(
      scripted(0, fault::FaultKind::kCrash, 1, /*duration_ms=*/400));
  const auto report = run_discovery(sc);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_TRUE(report.outcomes[0].discovered);
  EXPECT_EQ(report.services.size(), 3u);
  EXPECT_EQ(report.fault_counts.at("reboot"), 1u);
  EXPECT_GT(report.que1_retransmits, 0u);
}

TEST(DiscoveryTest, ZombieObjectTimesOutCleanly) {
  // A silent-drop zombie burns compute but never replies; its exchange
  // must park at a terminal timeout, not spin forever.
  const Fleet f = make_fleet(3, Level::kL2);
  DiscoveryScenario sc = scenario_for(f);
  sc.faults.scripted.push_back(scripted(1, fault::FaultKind::kZombie, 1));
  const auto report = run_discovery(sc);
  EXPECT_LE(report.total_ms, sc.retry.round_deadline_ms);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_FALSE(report.outcomes[1].discovered);
  EXPECT_EQ(report.outcomes[1].reason, FailReason::kTimedOut);
  EXPECT_EQ(report.fault_counts.at("zombie"), 1u);
  EXPECT_GE(report.fault_counts.at("zombie_suppressed"), 1u);
}

TEST(DiscoveryTest, ByzantineObjectIsDetected) {
  // Truncated replies can never verify; the subject rejects them and the
  // outcome is attributed to the Byzantine fault.
  const Fleet f = make_fleet(3, Level::kL2);
  DiscoveryScenario sc = scenario_for(f);
  auto ev = scripted(2, fault::FaultKind::kByzantine, 0);
  ev.mode = fault::ByzantineMode::kTruncate;
  ev.seed = 77;
  sc.faults.scripted.push_back(ev);
  const auto report = run_discovery(sc);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_FALSE(report.outcomes[2].discovered);
  EXPECT_EQ(report.outcomes[2].reason, FailReason::kByzantineDetected);
  EXPECT_GT(report.outcomes[2].rejects, 0u);
  EXPECT_EQ(report.fault_counts.at("byzantine"), 1u);
  // Honest peers are unaffected by their neighbor's corruption.
  EXPECT_TRUE(report.outcomes[0].discovered);
  EXPECT_TRUE(report.outcomes[1].discovered);
}

TEST(DiscoveryTest, StragglerDelaysButCompletes) {
  const Fleet f = make_fleet(3, Level::kL2);
  DiscoveryScenario clean_sc = scenario_for(f);
  const auto clean = run_discovery(clean_sc);
  ASSERT_EQ(clean.services.size(), 3u);

  DiscoveryScenario sc = scenario_for(f);
  auto ev = scripted(0, fault::FaultKind::kStraggle, 1,
                     /*duration_ms=*/1500);
  ev.factor = 8.0;
  sc.faults.scripted.push_back(ev);
  const auto report = run_discovery(sc);
  EXPECT_EQ(report.services.size(), 3u);  // slow, not lost
  EXPECT_GT(report.total_ms, clean.total_ms);
  EXPECT_EQ(report.fault_counts.at("straggle"), 1u);
}

TEST(DiscoveryTest, FaultFreeReportCarriesNoFaultFields) {
  // The chaos layer must be invisible when unarmed: no fault counters,
  // no failure reasons, no fault-dropped deliveries — byte-identical
  // reports to a build without the fault layer.
  const Fleet f = make_fleet(3, Level::kL2);
  DiscoveryScenario sc = scenario_for(f);
  const auto report = run_discovery(sc);
  EXPECT_TRUE(report.fault_counts.empty());
  EXPECT_EQ(report.net_stats.fault_dropped, 0u);
  for (const auto& oc : report.outcomes) {
    EXPECT_EQ(oc.reason, FailReason::kNone);
    EXPECT_EQ(oc.rejects, 0u);
  }
}

TEST(DiscoveryTest, MultiRoundFindsServicesAcrossGroups) {
  Backend be(crypto::Strength::b128, 13);
  auto subject =
      be.register_subject("carol", {}, {"support", "disability"});
  std::vector<ScenarioObject> objs;
  objs.push_back({be.register_object(
                      "kiosk", {}, Level::kL3, {},
                      {{"position!='x'", "staff", {"use"}}},
                      {{"support", "covert-a", {"a"}}}),
                  1});
  objs.push_back({be.register_object(
                      "ramp", {}, Level::kL3, {},
                      {{"position!='x'", "staff", {"use"}}},
                      {{"disability", "covert-b", {"b"}}}),
                  1});
  DiscoveryScenario sc;
  sc.subject = subject;
  sc.admin_pub = be.admin_public_key();
  sc.objects = objs;
  sc.epoch = be.now();
  sc.rounds = 2;  // cycle both group keys (§VI-C)
  const auto report = run_discovery(sc);
  std::size_t covert = report.count_level(3);
  EXPECT_EQ(covert, 2u);
}

}  // namespace
}  // namespace argus::core
