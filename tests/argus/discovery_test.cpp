// Simulated end-to-end discovery: the paper's testbed shape (1 subject,
// up to 20 objects, 1-4 hops) on the discrete-event ground network.
#include <gtest/gtest.h>

#include "argus/discovery.hpp"

namespace argus::core {
namespace {

using backend::AttributeMap;
using backend::Backend;
using backend::Level;

struct Fleet {
  std::unique_ptr<Backend> be;
  backend::SubjectCredentials subject;
  std::vector<ScenarioObject> objects;
};

/// Build a testbed: `n` objects of the given level, all at `hops`.
Fleet make_fleet(std::size_t n, Level level, unsigned hops = 1) {
  Fleet f;
  f.be = std::make_unique<Backend>(crypto::Strength::b128, 11);
  f.subject = f.be->register_subject(
      "alice", AttributeMap{{"position", "employee"}}, {"support"});
  for (std::size_t i = 0; i < n; ++i) {
    const std::string id = "obj-" + std::to_string(i);
    backend::ObjectCredentials creds;
    switch (level) {
      case Level::kL1:
        creds = f.be->register_object(id, AttributeMap{{"type", "sensor"}},
                                      Level::kL1, {"read"});
        break;
      case Level::kL2:
        creds = f.be->register_object(
            id, AttributeMap{{"type", "multimedia"}}, Level::kL2, {},
            {{"position=='employee'", "staff", {"use"}}});
        break;
      case Level::kL3:
        creds = f.be->register_object(
            id, AttributeMap{{"type", "kiosk"}}, Level::kL3, {},
            {{"position=='employee'", "staff", {"use"}}},
            {{"support", "covert", {"use", "support"}}});
        break;
    }
    f.objects.push_back(ScenarioObject{std::move(creds), hops});
  }
  return f;
}

DiscoveryScenario scenario_for(const Fleet& f) {
  DiscoveryScenario sc;
  sc.subject = f.subject;
  sc.admin_pub = f.be->admin_public_key();
  sc.objects = f.objects;
  sc.epoch = f.be->now();
  return sc;
}

TEST(DiscoveryTest, Level1TwentyObjectsDiscovered) {
  const Fleet f = make_fleet(20, Level::kL1);
  const auto report = run_discovery(scenario_for(f));
  EXPECT_EQ(report.services.size(), 20u);
  EXPECT_EQ(report.count_level(1), 20u);
  // Paper Fig 6(e): ~0.25 s for 20 Level 1 objects. Allow generous band.
  EXPECT_GT(report.total_ms, 120);
  EXPECT_LT(report.total_ms, 450);
}

TEST(DiscoveryTest, Level2TwentyObjectsDiscovered) {
  const Fleet f = make_fleet(20, Level::kL2);
  const auto report = run_discovery(scenario_for(f));
  EXPECT_EQ(report.count_level(2), 20u);
  // Paper: ~0.63 s.
  EXPECT_GT(report.total_ms, 450);
  EXPECT_LT(report.total_ms, 900);
}

TEST(DiscoveryTest, Level3TwentyObjectsDiscoveredCovertly) {
  const Fleet f = make_fleet(20, Level::kL3);
  const auto report = run_discovery(scenario_for(f));
  EXPECT_EQ(report.count_level(3), 20u);
  EXPECT_GT(report.total_ms, 450);
  EXPECT_LT(report.total_ms, 900);
}

TEST(DiscoveryTest, Level2And3TimesOverlap) {
  // Fig 6(e): Level 2 and Level 3 curves overlap — the timing signature
  // of indistinguishability at fleet scale.
  const Fleet f2 = make_fleet(10, Level::kL2);
  const Fleet f3 = make_fleet(10, Level::kL3);
  const auto r2 = run_discovery(scenario_for(f2));
  const auto r3 = run_discovery(scenario_for(f3));
  EXPECT_NEAR(r2.total_ms, r3.total_ms, 0.12 * r2.total_ms);
}

TEST(DiscoveryTest, TimeGrowsWithObjectCount) {
  double prev = 0;
  for (std::size_t n : {5u, 10u, 20u}) {
    const Fleet f = make_fleet(n, Level::kL2);
    const auto report = run_discovery(scenario_for(f));
    EXPECT_EQ(report.services.size(), n);
    EXPECT_GT(report.total_ms, prev);
    prev = report.total_ms;
  }
}

TEST(DiscoveryTest, MultiHopCostsMore) {
  const Fleet near = make_fleet(20, Level::kL2, 1);
  Fleet mixed = make_fleet(20, Level::kL2, 1);
  for (std::size_t i = 0; i < mixed.objects.size(); ++i) {
    mixed.objects[i].hops = static_cast<unsigned>(1 + i / 5);  // 5 per ring
  }
  const auto r_near = run_discovery(scenario_for(near));
  const auto r_mixed = run_discovery(scenario_for(mixed));
  EXPECT_EQ(r_mixed.services.size(), 20u);
  // Paper Fig 6(g): 0.63 s single-hop -> 1.15 s multi-hop.
  EXPECT_GT(r_mixed.total_ms, 1.2 * r_near.total_ms);
}

TEST(DiscoveryTest, SingleObjectLatencyByHops) {
  // Fig 6(h): latency grows roughly linearly with hop count.
  std::vector<double> times;
  for (unsigned hops : {1u, 2u, 3u, 4u}) {
    const Fleet f = make_fleet(1, Level::kL1, hops);
    times.push_back(run_discovery(scenario_for(f)).total_ms);
  }
  EXPECT_LT(times[0], times[1]);
  EXPECT_LT(times[1], times[2]);
  EXPECT_LT(times[2], times[3]);
  // 4-hop should be roughly 3-4.5x the 1-hop latency (paper: 0.13->0.53 s).
  EXPECT_GT(times[3], 2.5 * times[0]);
  EXPECT_LT(times[3], 5.5 * times[0]);
}

TEST(DiscoveryTest, MixedFleetConcurrentLevels) {
  // 3-in-1: one round discovers L1, L2, L3 services concurrently.
  Fleet f = make_fleet(4, Level::kL1);
  Fleet f2 = make_fleet(3, Level::kL2);
  Fleet f3 = make_fleet(2, Level::kL3);
  // Rebuild in one backend so credentials share an admin.
  Backend be(crypto::Strength::b128, 12);
  auto subject = be.register_subject(
      "alice", AttributeMap{{"position", "employee"}}, {"support"});
  std::vector<ScenarioObject> objs;
  for (int i = 0; i < 4; ++i) {
    objs.push_back({be.register_object("l1-" + std::to_string(i), {},
                                       Level::kL1, {"read"}),
                    1});
  }
  for (int i = 0; i < 3; ++i) {
    objs.push_back({be.register_object(
                        "l2-" + std::to_string(i), {}, Level::kL2, {},
                        {{"position=='employee'", "staff", {"use"}}}),
                    1});
  }
  for (int i = 0; i < 2; ++i) {
    objs.push_back({be.register_object(
                        "l3-" + std::to_string(i), {}, Level::kL3, {},
                        {{"position=='employee'", "staff", {"use"}}},
                        {{"support", "covert", {"support"}}}),
                    1});
  }
  DiscoveryScenario sc;
  sc.subject = subject;
  sc.admin_pub = be.admin_public_key();
  sc.objects = objs;
  sc.epoch = be.now();
  const auto report = run_discovery(sc);
  EXPECT_EQ(report.count_level(1), 4u);
  EXPECT_EQ(report.count_level(2), 3u);
  EXPECT_EQ(report.count_level(3), 2u);
  EXPECT_EQ(report.timeline.size(), 9u);
  (void)f;
  (void)f2;
  (void)f3;
}

TEST(DiscoveryTest, ReportAccountsMessagesAndCompute) {
  const Fleet f = make_fleet(5, Level::kL2);
  const auto report = run_discovery(scenario_for(f));
  EXPECT_GT(report.bytes_by_msg.at("QUE1"), 0u);
  EXPECT_GT(report.bytes_by_msg.at("RES1"), 0u);
  EXPECT_GT(report.bytes_by_msg.at("QUE2"), 0u);
  EXPECT_GT(report.bytes_by_msg.at("RES2"), 0u);
  // Subject: ~27.4 ms per object + RES2 processing extras.
  EXPECT_NEAR(report.subject_compute_ms, 5 * 27.4, 5 * 8.0);
  EXPECT_NEAR(report.object_compute_ms, 5 * 78.2, 5 * 4.0);
  EXPECT_EQ(report.net_stats.messages, 1u + 3 * 5u);  // QUE1 + 3 per object
}

TEST(DiscoveryTest, DeterministicGivenSeed) {
  const Fleet f = make_fleet(8, Level::kL3);
  const auto r1 = run_discovery(scenario_for(f));
  const auto r2 = run_discovery(scenario_for(f));
  EXPECT_EQ(r1.total_ms, r2.total_ms);
  EXPECT_EQ(r1.net_stats.bytes, r2.net_stats.bytes);
}

TEST(DiscoveryTest, MultiRoundFindsServicesAcrossGroups) {
  Backend be(crypto::Strength::b128, 13);
  auto subject =
      be.register_subject("carol", {}, {"support", "disability"});
  std::vector<ScenarioObject> objs;
  objs.push_back({be.register_object(
                      "kiosk", {}, Level::kL3, {},
                      {{"position!='x'", "staff", {"use"}}},
                      {{"support", "covert-a", {"a"}}}),
                  1});
  objs.push_back({be.register_object(
                      "ramp", {}, Level::kL3, {},
                      {{"position!='x'", "staff", {"use"}}},
                      {{"disability", "covert-b", {"b"}}}),
                  1});
  DiscoveryScenario sc;
  sc.subject = subject;
  sc.admin_pub = be.admin_public_key();
  sc.objects = objs;
  sc.epoch = be.now();
  sc.rounds = 2;  // cycle both group keys (§VI-C)
  const auto report = run_discovery(sc);
  std::size_t covert = report.count_level(3);
  EXPECT_EQ(covert, 2u);
}

}  // namespace
}  // namespace argus::core
