// Crypto-pipeline engine tests: ECDH session resumption (hit/miss/expiry/
// eviction/rotation/reboot semantics, proven via profiler span counts),
// batched QUE2 handling (exact sequential equivalence), and the
// degenerate-KEXM regression (reject status, never a throw).
#include <gtest/gtest.h>

#include <stdexcept>

#include "argus/object_engine.hpp"
#include "argus/subject_engine.hpp"
#include "crypto/ecdh.hpp"
#include "obs/prof.hpp"

namespace argus::core {
namespace {

using backend::AttributeMap;
using backend::Backend;
using backend::Level;

class ResumptionFixture : public ::testing::Test {
 protected:
  ResumptionFixture() : be_(crypto::Strength::b128, 7071) {
    alice_ = be_.register_subject(
        "alice", AttributeMap{{"position", "manager"}, {"department", "X"}},
        {"counseling"});
    bob_ = be_.register_subject("bob",
                                AttributeMap{{"position", "manager"}});
    carol_ = be_.register_subject("carol",
                                  AttributeMap{{"position", "manager"}});
    tv_ = be_.register_object(
        "tv-1", AttributeMap{{"type", "multimedia"}}, Level::kL2, {},
        {{"position=='manager'", "managers", {"play", "configure"}}});
    radio_ = be_.register_object(
        "radio-1", AttributeMap{{"type", "multimedia"}}, Level::kL2, {},
        {{"position=='manager'", "managers", {"listen"}}});
  }

  SubjectEngine make_subject(const backend::SubjectCredentials& creds,
                             const ResumptionParams& res = {},
                             std::uint64_t seed = 5) {
    SubjectEngineConfig cfg;
    cfg.creds = creds;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = seed;
    cfg.resumption = res;
    return SubjectEngine(std::move(cfg));
  }

  ObjectEngine make_object(const backend::ObjectCredentials& creds,
                           const ResumptionParams& res = {},
                           std::uint64_t seed = 6) {
    ObjectEngineConfig cfg;
    cfg.creds = creds;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = seed;
    cfg.resumption = res;
    return ObjectEngine(std::move(cfg));
  }

  /// One full discovery exchange. Returns true on a completed RES2.
  bool exchange(SubjectEngine& s, ObjectEngine& o, std::uint64_t now) {
    const Bytes que1 = s.start_round();
    const auto res1 = o.handle(que1, now);
    if (!res1) return false;
    const auto que2 = s.handle(*res1, now);
    if (!que2) return false;
    const auto res2 = o.handle(*que2, now);
    if (!res2) return false;
    return s.handle(*res2, now).status == HandleStatus::kOk;
  }

  static ResumptionParams enabled_resumption() {
    ResumptionParams r;
    r.enabled = true;
    return r;
  }

  /// Count of `label` spans recorded so far.
  static std::uint64_t spans(const obs::prof::Profiler& p,
                             const std::string& label) {
    const auto agg = p.by_label();
    const auto it = agg.find(label);
    return it == agg.end() ? 0 : it->second.count;
  }

  Backend be_;
  backend::SubjectCredentials alice_, bob_, carol_;
  backend::ObjectCredentials tv_, radio_;
};

TEST_F(ResumptionFixture, HitSkipsEveryScalarMultiplication) {
  // With resumption on both sides, a re-discovery between the same
  // certified pair runs zero ECDH scalar multiplications: the subject
  // reuses its cached ephemeral + premaster, the object reuses the cached
  // premaster against its semi-static epoch key. "crypto.ec.scalar_mul"
  // spans are emitted exactly by the ECDH shared-secret multiplications
  // (signature work routes through the comb / Shamir spans), so the span
  // count is a direct proof the multiplications were skipped.
  auto s = make_subject(alice_, enabled_resumption());
  auto o = make_object(tv_, enabled_resumption());
  obs::prof::Profiler profiler;
  {
    obs::prof::Profiler::Attach attach(profiler, 0);
    ASSERT_TRUE(exchange(s, o, be_.now()));
  }
  const std::uint64_t first = spans(profiler, "crypto.ec.scalar_mul");
  EXPECT_EQ(first, 2u);  // subject + object shared-secret multiplications
  EXPECT_EQ(o.stats().resumption_misses, 1u);
  EXPECT_EQ(s.stats().resumption_misses, 1u);
  {
    obs::prof::Profiler::Attach attach(profiler, 0);
    ASSERT_TRUE(exchange(s, o, be_.now()));
  }
  EXPECT_EQ(spans(profiler, "crypto.ec.scalar_mul"), first);  // no new ones
  EXPECT_EQ(o.stats().resumption_hits, 1u);
  EXPECT_EQ(s.stats().resumption_hits, 1u);
  // Session keys still work end-to-end: the discovery was recorded again
  // (same object+variant dedupes, so check the round completed via res2).
  EXPECT_EQ(s.stats().res2, 2u);
}

TEST_F(ResumptionFixture, DisabledByDefaultKeepsFullEcdh) {
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  ASSERT_TRUE(exchange(s, o, be_.now()));
  ASSERT_TRUE(exchange(s, o, be_.now()));
  EXPECT_EQ(o.stats().resumption_hits + o.stats().resumption_misses, 0u);
  EXPECT_EQ(s.stats().resumption_hits + s.stats().resumption_misses, 0u);
}

TEST_F(ResumptionFixture, ObjectTtlExpiryRerunsFullEcdh) {
  ResumptionParams res = enabled_resumption();
  res.ttl_ms = 1000;
  res.rotate_ms = 0;  // isolate TTL from epoch rotation
  auto s = make_subject(alice_, enabled_resumption());
  auto o = make_object(tv_, res);
  ASSERT_TRUE(exchange(s, o, be_.now()));
  o.advance_clock(5000);  // sweeps the premaster cache (entry born at 0)
  ASSERT_TRUE(exchange(s, o, be_.now()));
  EXPECT_EQ(o.stats().resumption_misses, 2u);
  EXPECT_EQ(o.stats().resumption_hits, 0u);
}

TEST_F(ResumptionFixture, SubjectTtlExpiryRerunsFullEcdh) {
  ResumptionParams res = enabled_resumption();
  res.ttl_ms = 1;  // measured in units of handle()'s `now`
  auto s = make_subject(alice_, res);
  auto o = make_object(tv_, enabled_resumption());
  ASSERT_TRUE(exchange(s, o, be_.now()));
  ASSERT_TRUE(exchange(s, o, be_.now() + 10));
  EXPECT_EQ(s.stats().resumption_misses, 2u);
  EXPECT_EQ(s.stats().resumption_hits, 0u);
}

TEST_F(ResumptionFixture, SubjectLruEvictionRerunsFullEcdh) {
  ResumptionParams res = enabled_resumption();
  res.capacity = 1;
  auto s = make_subject(alice_, res);
  auto tv = make_object(tv_, enabled_resumption());
  auto radio = make_object(radio_, enabled_resumption(), 9);
  ASSERT_TRUE(exchange(s, tv, be_.now()));     // caches tv
  ASSERT_TRUE(exchange(s, radio, be_.now()));  // evicts tv (capacity 1)
  ASSERT_TRUE(exchange(s, tv, be_.now()));     // must re-run full ECDH
  EXPECT_EQ(s.stats().resumption_misses, 3u);
  EXPECT_EQ(s.stats().resumption_hits, 0u);
}

TEST_F(ResumptionFixture, EpochRotationForcesFreshAgreement) {
  ResumptionParams res = enabled_resumption();
  res.rotate_ms = 1000;
  auto s = make_subject(alice_, enabled_resumption());
  auto o = make_object(tv_, res);
  ASSERT_TRUE(exchange(s, o, be_.now()));
  o.advance_clock(2000);  // epoch key retired; cached premasters orphaned
  ASSERT_TRUE(exchange(s, o, be_.now()));
  // The object presents a fresh KEXM, so the subject's entry mismatches
  // too — both sides fall back to full key agreement.
  EXPECT_EQ(o.stats().resumption_hits, 0u);
  EXPECT_EQ(o.stats().resumption_misses, 2u);
  EXPECT_EQ(s.stats().resumption_hits, 0u);
  EXPECT_EQ(s.stats().resumption_misses, 2u);
}

TEST_F(ResumptionFixture, RebootInvalidatesCachedSessions) {
  auto s = make_subject(alice_, enabled_resumption());
  auto o = make_object(tv_, enabled_resumption());
  ASSERT_TRUE(exchange(s, o, be_.now()));
  // Reboot: a fresh engine with fresh randomness. Its premaster cache
  // starts empty and its epoch key differs, so neither side resumes.
  auto rebooted = make_object(tv_, enabled_resumption(), 77);
  ASSERT_TRUE(exchange(s, rebooted, be_.now()));
  EXPECT_EQ(rebooted.stats().resumption_hits, 0u);
  EXPECT_EQ(rebooted.stats().resumption_misses, 1u);
  EXPECT_EQ(s.stats().resumption_hits, 0u);
  EXPECT_EQ(s.stats().resumption_misses, 2u);
}

TEST_F(ResumptionFixture, CachedSessionsNeverCrossCertificates) {
  // The cache key is the peer certificate hash: a different subject (and
  // so a different cert) can never ride an existing entry, even from the
  // same network identity.
  auto o = make_object(tv_, enabled_resumption());
  auto s1 = make_subject(alice_, enabled_resumption());
  auto s2 = make_subject(bob_, enabled_resumption(), 11);
  ASSERT_TRUE(exchange(s1, o, be_.now()));
  ASSERT_TRUE(exchange(s2, o, be_.now()));
  EXPECT_EQ(o.stats().resumption_hits, 0u);
  EXPECT_EQ(o.stats().resumption_misses, 2u);
  // And the original pair still hits — the entries are independent.
  ASSERT_TRUE(exchange(s1, o, be_.now()));
  EXPECT_EQ(o.stats().resumption_hits, 1u);
}

// ---------------------------------------------------------------------------
// handle_batch: the batch path must produce exactly the sequential results.

class BatchFixture : public ResumptionFixture {
 protected:
  /// Two engines configured identically (same seed -> same DRBG stream),
  /// so any divergence between sequential and batched processing is the
  /// batch path's fault.
  struct Pair {
    ObjectEngine seq;
    ObjectEngine bat;
  };

  Pair make_pair(const ResumptionParams& res = {}) {
    return Pair{make_object(tv_, res), make_object(tv_, res)};
  }

  /// Feed one wire to both engines (sequential handle), asserting they
  /// stay lockstep-identical.
  void feed_both(Pair& p, const Bytes& wire, std::uint64_t now) {
    const auto a = p.seq.handle(wire, now);
    const auto b = p.bat.handle(wire, now);
    ASSERT_EQ(a.status, b.status);
    ASSERT_EQ(a.reply, b.reply);
  }

  void expect_equal_results(const std::vector<HandleResult>& seq,
                            const std::vector<HandleResult>& bat) {
    ASSERT_EQ(seq.size(), bat.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].status, bat[i].status) << "item " << i;
      EXPECT_EQ(seq[i].reply, bat[i].reply) << "item " << i;
    }
  }

  void expect_equal_stats(const ObjectEngine& a, const ObjectEngine& b) {
    EXPECT_EQ(a.stats().que2_handled, b.stats().que2_handled);
    EXPECT_EQ(a.stats().replies_sent, b.stats().replies_sent);
    EXPECT_EQ(a.stats().drops, b.stats().drops);
    EXPECT_EQ(a.stats().rejects, b.stats().rejects);
    EXPECT_EQ(a.stats().replays_detected, b.stats().replays_detected);
    EXPECT_EQ(a.stats().retransmissions, b.stats().retransmissions);
    EXPECT_EQ(a.stats().resumption_hits, b.stats().resumption_hits);
    EXPECT_EQ(a.open_sessions(), b.open_sessions());
    EXPECT_EQ(a.cached_replies(), b.cached_replies());
  }
};

TEST_F(BatchFixture, BenignBatchMatchesSequential) {
  auto p = make_pair();
  std::vector<SubjectEngine> subjects;
  subjects.push_back(make_subject(alice_, {}, 21));
  subjects.push_back(make_subject(bob_, {}, 22));
  subjects.push_back(make_subject(carol_, {}, 23));
  std::vector<ObjectEngine::BatchInput> batch;
  for (auto& s : subjects) {
    const Bytes que1 = s.start_round();
    const auto res1a = p.seq.handle(que1, be_.now());
    const auto res1b = p.bat.handle(que1, be_.now());
    ASSERT_TRUE(res1a);
    ASSERT_EQ(*res1a, *res1b);
    const auto que2 = s.handle(*res1a, be_.now());
    ASSERT_TRUE(que2);
    batch.push_back({*que2, be_.now(), 0});
  }
  std::vector<HandleResult> seq;
  for (const auto& item : batch) {
    seq.push_back(p.seq.handle(item.wire, item.now, item.peer));
  }
  const auto bat = p.bat.handle_batch(batch);
  expect_equal_results(seq, bat);
  expect_equal_stats(p.seq, p.bat);
  // All nine signatures (cert, transcript, profile per QUE2) settled by
  // batch equations.
  EXPECT_EQ(p.bat.stats().batch_verified_sigs, 9u);
  EXPECT_EQ(p.bat.stats().batch_fallback_sigs, 0u);
  EXPECT_EQ(p.seq.stats().batch_verified_sigs, 0u);
}

TEST_F(BatchFixture, CorruptAndHostileItemsMatchSequential) {
  auto p = make_pair();
  std::vector<SubjectEngine> subjects;
  subjects.push_back(make_subject(alice_, {}, 31));
  subjects.push_back(make_subject(bob_, {}, 32));
  subjects.push_back(make_subject(carol_, {}, 33));
  std::vector<Bytes> que2s;
  for (auto& s : subjects) {
    const Bytes que1 = s.start_round();
    const auto res1a = p.seq.handle(que1, be_.now());
    const auto res1b = p.bat.handle(que1, be_.now());
    ASSERT_TRUE(res1a);
    ASSERT_EQ(*res1a, *res1b);
    const auto que2 = s.handle(*res1a, be_.now());
    ASSERT_TRUE(que2);
    que2s.push_back(*que2);
  }
  // A stale QUE2: built against a third engine whose session this pair
  // never opened.
  auto stranger = make_object(radio_, {}, 40);
  auto s4 = make_subject(alice_, {}, 34);
  const Bytes que1_s4 = s4.start_round();
  const auto res1_s4 = stranger.handle(que1_s4, be_.now());
  ASSERT_TRUE(res1_s4);
  const auto stale_que2 = s4.handle(*res1_s4, be_.now());
  ASSERT_TRUE(stale_que2);
  // Tampered copy: flip one byte inside the transcript signature (the two
  // 32-byte MACs plus length prefixes occupy the last 68 bytes; the
  // signature sits just before them), forcing a kBadSignature that the
  // batch path must settle via its per-item fallback.
  Bytes tampered = que2s[1];
  tampered[tampered.size() - 70] ^= 0xff;

  std::vector<ObjectEngine::BatchInput> batch;
  batch.push_back({que2s[0], be_.now(), 0});
  batch.push_back({tampered, be_.now(), 0});
  batch.push_back({Bytes{0x99, 0x01, 0x02}, be_.now(), 0});  // malformed
  batch.push_back({*stale_que2, be_.now(), 0});
  batch.push_back({que2s[1], be_.now(), 0});
  batch.push_back({que2s[2], be_.now(), 0});
  batch.push_back({que2s[2], be_.now(), 0});  // duplicate R_S -> resend

  std::vector<HandleResult> seq;
  for (const auto& item : batch) {
    seq.push_back(p.seq.handle(item.wire, item.now, item.peer));
  }
  const auto bat = p.bat.handle_batch(batch);
  expect_equal_results(seq, bat);
  expect_equal_stats(p.seq, p.bat);
}

TEST_F(BatchFixture, InterleavedQue1FlushesAndMatches) {
  auto p = make_pair();
  auto s1 = make_subject(alice_, {}, 41);
  auto s2 = make_subject(bob_, {}, 42);
  auto s3 = make_subject(carol_, {}, 43);
  HandleResult que2_a, que2_b;
  for (auto pair : {std::make_pair(&s1, &que2_a),
                    std::make_pair(&s2, &que2_b)}) {
    const Bytes que1 = pair.first->start_round();
    const auto ra = p.seq.handle(que1, be_.now());
    const auto rb = p.bat.handle(que1, be_.now());
    ASSERT_TRUE(ra);
    ASSERT_EQ(*ra, *rb);
    *pair.second = pair.first->handle(*ra, be_.now());
  }
  ASSERT_TRUE(que2_a);
  ASSERT_TRUE(que2_b);
  // Batch: QUE2, then a brand-new QUE1 (flush barrier), then QUE2.
  const Bytes q1_c = s3.start_round();
  std::vector<ObjectEngine::BatchInput> items;
  items.push_back({*que2_a, be_.now(), 0});
  items.push_back({q1_c, be_.now(), 0});
  items.push_back({*que2_b, be_.now(), 0});
  std::vector<HandleResult> seq;
  for (const auto& item : items) {
    seq.push_back(p.seq.handle(item.wire, item.now, item.peer));
  }
  const auto bat = p.bat.handle_batch(items);
  expect_equal_results(seq, bat);
  expect_equal_stats(p.seq, p.bat);
}

TEST_F(BatchFixture, ResumptionInsideBatchMatchesSequential) {
  auto p = make_pair(enabled_resumption());
  auto s1 = make_subject(alice_, enabled_resumption(), 51);
  auto s2 = make_subject(bob_, enabled_resumption(), 52);
  for (int round = 0; round < 2; ++round) {
    std::vector<ObjectEngine::BatchInput> batch;
    for (auto* s : {&s1, &s2}) {
      const Bytes que1 = s->start_round();
      const auto res1a = p.seq.handle(que1, be_.now());
      const auto res1b = p.bat.handle(que1, be_.now());
      ASSERT_TRUE(res1a);
      ASSERT_EQ(*res1a, *res1b);
      const auto que2 = s->handle(*res1a, be_.now());
      ASSERT_TRUE(que2);
      batch.push_back({*que2, be_.now(), 0});
    }
    std::vector<HandleResult> seq;
    for (const auto& item : batch) {
      seq.push_back(p.seq.handle(item.wire, item.now, item.peer));
    }
    const auto bat = p.bat.handle_batch(batch);
    expect_equal_results(seq, bat);
    expect_equal_stats(p.seq, p.bat);
  }
  // Round 2 resumed both subjects on both engines.
  EXPECT_EQ(p.seq.stats().resumption_hits, 2u);
  EXPECT_EQ(p.bat.stats().resumption_hits, 2u);
}

// ---------------------------------------------------------------------------
// Degenerate-KEXM regression: a hostile key-exchange point must land in
// the reject taxonomy (kBadKex), never escape a handler as an exception.

class BadKexFixture : public ResumptionFixture {};

TEST_F(BadKexFixture, CheckedEcdhRejectsDegenerateInputs) {
  const auto& g = crypto::group_for(crypto::Strength::b128);
  crypto::HmacDrbg rng(str_bytes("bad-kex"));
  const auto kp = crypto::ecdh_generate(g, rng);
  // Identity peer point: checked variant declines, throwing variant throws.
  EXPECT_FALSE(crypto::ecdh_shared_secret_checked(
                   g, kp.priv, crypto::EcPoint::identity())
                   .has_value());
  EXPECT_THROW(crypto::ecdh_shared_secret(g, kp.priv,
                                          crypto::EcPoint::identity()),
               std::invalid_argument);
  // Off-curve point: same.
  crypto::EcPoint off = kp.pub;
  off.x = addmod(off.x, crypto::UInt::from_u64(1), g.params().p);
  EXPECT_FALSE(
      crypto::ecdh_shared_secret_checked(g, kp.priv, off).has_value());
  EXPECT_THROW(crypto::ecdh_shared_secret(g, kp.priv, off),
               std::invalid_argument);
}

TEST_F(BadKexFixture, ObjectRejectsDegenerateKexmWithStatus) {
  // A certified-but-malicious subject signs a QUE2 whose KEXM is garbage.
  // The signature verifies (it covers the garbage), so the engine reaches
  // the key agreement — which must answer kBadKex, not throw.
  const auto& g = crypto::group_for(crypto::Strength::b128);
  auto o = make_object(tv_);
  const Bytes r_s(kNonceSize, 0x21);
  const Bytes que1_wire = encode(Message{Que1{r_s}});
  const auto res1 = o.handle(que1_wire, be_.now());
  ASSERT_TRUE(res1);

  Que2 q2;
  q2.r_s = r_s;
  q2.prof = alice_.prof.serialize();
  q2.cert = alice_.cert.serialize();
  q2.kexm = Bytes{0x00};  // not a decodable SEC1 point
  Transcript t;
  t.absorb(que1_wire);
  t.absorb(*res1);
  t.absorb(q2.prof);
  t.absorb(q2.cert);
  t.absorb(q2.kexm);
  q2.sig = crypto::ecdsa_sign(g, alice_.keys.priv, t.digest()).to_bytes(g);
  q2.mac_s2 = Bytes(32, 0);  // never reached: kex check precedes the MAC

  const std::uint64_t rejects_before = o.stats().rejects;
  const auto res = o.handle(encode(Message{q2}), be_.now());
  EXPECT_EQ(res.status, HandleStatus::kBadKex);
  EXPECT_FALSE(res.has_value());
  EXPECT_EQ(o.stats().rejects, rejects_before + 1);
}

TEST_F(BadKexFixture, SubjectRejectsDegenerateKexmWithStatus) {
  // Mirror on the subject side: an object RES1 whose signature covers a
  // garbage KEXM must answer kBadKex.
  const auto& g = crypto::group_for(crypto::Strength::b128);
  auto s = make_subject(alice_);
  const Bytes que1 = s.start_round();
  const auto decoded = decode(que1);
  ASSERT_TRUE(decoded.has_value());
  const Bytes r_s = std::get<Que1>(*decoded).r_s;

  Res1 r1;
  r1.r_s = r_s;
  r1.r_o = Bytes(kNonceSize, 0x42);
  r1.cert = tv_.cert.serialize();
  r1.kexm = Bytes{0x04, 0x00, 0x01};  // not a decodable SEC1 point
  r1.sig = crypto::ecdsa_sign(g, tv_.keys.priv,
                              concat({r1.r_s, r1.r_o, r1.kexm}))
               .to_bytes(g);
  const auto res = s.handle(encode(Message{r1}), be_.now());
  EXPECT_EQ(res.status, HandleStatus::kBadKex);
  EXPECT_EQ(s.stats().rejects, 1u);
}

}  // namespace
}  // namespace argus::core
