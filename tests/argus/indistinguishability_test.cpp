// v3.0 indistinguishability properties (§VI-B): identical QUE2 structure
// for all subjects, constant RES2 length, double-faced Level 3 objects.
// These are the observable-bytes guarantees an eavesdropper would attack.
#include <gtest/gtest.h>

#include "argus/object_engine.hpp"
#include "argus/subject_engine.hpp"
#include "crypto/aes.hpp"

namespace argus::core {
namespace {

using backend::AttributeMap;
using backend::Backend;
using backend::Level;

class IndistFixture : public ::testing::Test {
 protected:
  IndistFixture() : be_(crypto::Strength::b128, 77) {
    member_ = be_.register_subject("member",
                                   AttributeMap{{"position", "employee"}},
                                   {"support-group"});
    plain_ = be_.register_subject("plain",
                                  AttributeMap{{"position", "employee"}});
    l2_obj_ = be_.register_object(
        "printer", AttributeMap{{"type", "printer"}}, Level::kL2, {},
        {{"position=='employee'", "staff", {"print"}}});
    l3_obj_ = be_.register_object(
        "kiosk", AttributeMap{{"type", "kiosk"}}, Level::kL3, {},
        {{"position=='employee'", "staff", {"browse"}}},
        {{"support-group", "support", {"browse", "private resources"}}});
  }

  SubjectEngine subject(const backend::SubjectCredentials& c,
                        std::uint64_t seed) {
    SubjectEngineConfig cfg;
    cfg.creds = c;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = seed;
    return SubjectEngine(std::move(cfg));
  }
  ObjectEngine object(const backend::ObjectCredentials& c) {
    ObjectEngineConfig cfg;
    cfg.creds = c;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = 9;
    return ObjectEngine(std::move(cfg));
  }

  struct Trace {
    Bytes que1, res1, que2, res2;
  };
  Trace run(SubjectEngine& s, ObjectEngine& o) {
    Trace t;
    t.que1 = s.start_round();
    t.res1 = *o.handle(t.que1, be_.now());
    t.que2 = *s.handle(t.res1, be_.now());
    t.res2 = *o.handle(t.que2, be_.now());
    (void)s.handle(t.res2, be_.now());
    return t;
  }

  Backend be_;
  backend::SubjectCredentials member_, plain_;
  backend::ObjectCredentials l2_obj_, l3_obj_;
};

TEST_F(IndistFixture, AllSubjectsSendStructurallyIdenticalQue2) {
  // A subject with a real group key and one with only a cover-up key must
  // produce QUE2s of identical length and composition (MAC_{S,3} always
  // present in v3.0).
  auto s1 = subject(member_, 1);
  auto s2 = subject(plain_, 2);
  auto o1 = object(l3_obj_);
  auto o2 = object(l3_obj_);
  const Trace t1 = run(s1, o1);
  const Trace t2 = run(s2, o2);
  EXPECT_EQ(t1.que2.size(), t2.que2.size());
  const auto m1 = std::get<Que2>(*decode(t1.que2));
  const auto m2 = std::get<Que2>(*decode(t2.que2));
  EXPECT_EQ(m1.mac_s3.size(), kMacSize);
  EXPECT_EQ(m2.mac_s3.size(), kMacSize);
}

TEST_F(IndistFixture, Res2LengthConstantAcrossFaces) {
  // The Level 3 object's RES2 to a fellow and to a non-fellow must have
  // the same length even though the underlying variants differ.
  auto fellow = subject(member_, 3);
  auto outsider = subject(plain_, 4);
  auto o1 = object(l3_obj_);
  auto o2 = object(l3_obj_);
  const Trace tf = run(fellow, o1);
  const Trace to = run(outsider, o2);
  EXPECT_EQ(tf.res2.size(), to.res2.size());
  // And the two subjects did see different levels.
  EXPECT_EQ(fellow.discovered().front().level, 3);
  EXPECT_EQ(outsider.discovered().front().level, 2);
}

TEST_F(IndistFixture, Level2AndLevel3ObjectsEmitSameShapedTraffic) {
  // RES1 and RES2 from a pure Level 2 object vs a Level 3 object (cover
  // face) must be structurally identical; only profile content differs
  // under encryption. Compare full message lengths field by field.
  auto s1 = subject(plain_, 5);
  auto s2 = subject(plain_, 5);  // same seed: same subject behaviour
  auto o2 = object(l2_obj_);
  auto o3 = object(l3_obj_);
  const Trace a = run(s1, o2);
  const Trace b = run(s2, o3);
  EXPECT_EQ(a.res1.size(), b.res1.size());
  const auto ra = std::get<Res2>(*decode(a.res2));
  const auto rb = std::get<Res2>(*decode(b.res2));
  EXPECT_EQ(ra.mac_o.size(), rb.mac_o.size());
  // Note: sealed sizes differ only if profile sizes differ; both pad to
  // each object's own maximum. Here both have one 200 B class profile.
  EXPECT_EQ(a.res2.size(), b.res2.size());
}

TEST_F(IndistFixture, CoverUpMacIsNotVerifiableByObjects) {
  // The cover-up key is unique to the subject: no object ever validates
  // its MAC_{S,3}, so the subject only ever receives Level 2 responses.
  auto s = subject(plain_, 6);
  auto o = object(l3_obj_);
  run(s, o);
  EXPECT_EQ(o.stats().fellows_confirmed, 0u);
  EXPECT_EQ(s.discovered().front().level, 2);
}

TEST_F(IndistFixture, TimingEqualizationChargesLevel2Gap) {
  // With equalisation on, a pure Level 2 object charges one extra HMAC so
  // its modeled response time matches a Level 3 object's (§VII Case 9).
  auto run_compute = [&](bool equalize, const backend::ObjectCredentials& c) {
    ObjectEngineConfig cfg;
    cfg.creds = c;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = 9;
    cfg.equalize_timing = equalize;
    ObjectEngine o(std::move(cfg));
    auto s = subject(plain_, 7);
    const Bytes que1 = s.start_round();
    auto res1 = o.handle(que1, be_.now());
    auto que2 = s.handle(*res1, be_.now());
    (void)o.handle(*que2, be_.now());
    return o.take_consumed_ms();
  };
  const double l2_eq = run_compute(true, l2_obj_);
  const double l3 = run_compute(true, l3_obj_);
  const double l2_raw = run_compute(false, l2_obj_);
  EXPECT_NEAR(l2_eq, l3, 1e-9);  // equalised: exactly the same model cost
  EXPECT_LT(l2_raw, l2_eq);      // ablation: without it there IS a gap
}

TEST_F(IndistFixture, SealedProfilesUnreadableWithoutSessionKeys) {
  // An eavesdropper holding the full trace cannot open RES2 with either a
  // guessed key or a key from a different session.
  auto s = subject(member_, 8);
  auto o = object(l3_obj_);
  const Trace t = run(s, o);
  const auto res2 = std::get<Res2>(*decode(t.res2));
  EXPECT_FALSE(crypto::SealedBox::verifies(Bytes(32, 0xAA), res2.sealed_prof));
  EXPECT_FALSE(
      crypto::SealedBox::verifies(member_.group_keys[0].key, res2.sealed_prof));
}

}  // namespace
}  // namespace argus::core
