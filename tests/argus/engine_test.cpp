// End-to-end engine tests: subject and object engines wired directly
// (no network), exercising every level, protocol version, and failure
// path with real cryptography.
#include <gtest/gtest.h>

#include "argus/object_engine.hpp"
#include "argus/subject_engine.hpp"

namespace argus::core {
namespace {

using backend::AttributeMap;
using backend::Backend;
using backend::Level;

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture() : be_(crypto::Strength::b128, 2024) {
    alice_ = be_.register_subject(
        "alice", AttributeMap{{"position", "manager"}, {"department", "X"}},
        {"counseling"});
    visitor_ = be_.register_subject("victor",
                                    AttributeMap{{"position", "visitor"}});

    thermo_ = be_.register_object("thermo-1",
                                  AttributeMap{{"type", "thermometer"}},
                                  Level::kL1, {"read temperature"});
    tv_ = be_.register_object(
        "tv-1", AttributeMap{{"type", "multimedia"}}, Level::kL2,
        {},
        {{"position=='manager'", "managers", {"play", "configure"}},
         {"position=='employee'", "employees", {"play"}}});
    magazine_ = be_.register_object(
        "magazine-1", AttributeMap{{"type", "vending"}}, Level::kL3,
        {},
        {{"position!='visitor'", "regular", {"sell magazines"}}},
        {{"counseling", "support", {"dispense support flyers"}}});
  }

  SubjectEngine make_subject(const backend::SubjectCredentials& creds,
                             ProtocolVersion v = ProtocolVersion::kV30,
                             bool seek_l3 = true) {
    SubjectEngineConfig cfg;
    cfg.version = v;
    cfg.creds = creds;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = 5;
    cfg.seek_level3 = seek_l3;
    return SubjectEngine(std::move(cfg));
  }

  ObjectEngine make_object(const backend::ObjectCredentials& creds,
                           ProtocolVersion v = ProtocolVersion::kV30) {
    ObjectEngineConfig cfg;
    cfg.version = v;
    cfg.creds = creds;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = 6;
    return ObjectEngine(std::move(cfg));
  }

  /// Drive a complete discovery exchange between one subject and one
  /// object; returns true if it reached a recorded discovery.
  bool exchange(SubjectEngine& s, ObjectEngine& o) {
    const Bytes que1 = s.start_round();
    const auto res1 = o.handle(que1, be_.now());
    if (!res1) return false;
    const auto que2 = s.handle(*res1, be_.now());
    if (!que2) {
      // Level 1 path terminates after RES1.
      return !s.discovered().empty();
    }
    const auto res2 = o.handle(*que2, be_.now());
    if (!res2) return false;
    (void)s.handle(*res2, be_.now());
    return !s.discovered().empty();
  }

  Backend be_;
  backend::SubjectCredentials alice_, visitor_;
  backend::ObjectCredentials thermo_, tv_, magazine_;
};

TEST_F(EngineFixture, Level1Discovery) {
  auto s = make_subject(alice_);
  auto o = make_object(thermo_);
  ASSERT_TRUE(exchange(s, o));
  const auto& svc = s.discovered().front();
  EXPECT_EQ(svc.object_id, "thermo-1");
  EXPECT_EQ(svc.level, 1);
  EXPECT_EQ(svc.services, (std::vector<std::string>{"read temperature"}));
}

TEST_F(EngineFixture, Level2DifferentiatedVariants) {
  // Manager sees the "managers" variant...
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  ASSERT_TRUE(exchange(s, o));
  EXPECT_EQ(s.discovered().front().level, 2);
  EXPECT_EQ(s.discovered().front().variant_tag, "managers");
  EXPECT_EQ(s.discovered().front().services,
            (std::vector<std::string>{"play", "configure"}));
}

TEST_F(EngineFixture, Level2OutsiderSeesNothing) {
  // Visitor matches no predicate: object stays silent.
  auto s = make_subject(visitor_);
  auto o = make_object(tv_);
  EXPECT_FALSE(exchange(s, o));
  EXPECT_TRUE(s.discovered().empty());
}

TEST_F(EngineFixture, Level3FellowGetsCovertService) {
  auto s = make_subject(alice_);  // in the "counseling" secret group
  auto o = make_object(magazine_);
  ASSERT_TRUE(exchange(s, o));
  const auto& svc = s.discovered().front();
  EXPECT_EQ(svc.level, 3);
  EXPECT_EQ(svc.variant_tag, "support");
  EXPECT_EQ(svc.services,
            (std::vector<std::string>{"dispense support flyers"}));
}

TEST_F(EngineFixture, Level3NonFellowSeesCoverFace) {
  // Bob has a cover-up key; the magazine machine must look Level 2 to him.
  auto bob = be_.register_subject("bob",
                                  AttributeMap{{"position", "employee"}});
  auto s = make_subject(bob);
  auto o = make_object(magazine_);
  ASSERT_TRUE(exchange(s, o));
  const auto& svc = s.discovered().front();
  EXPECT_EQ(svc.level, 2);  // cover role: appears to be Level 2
  EXPECT_EQ(svc.variant_tag, "regular");
  EXPECT_EQ(svc.services, (std::vector<std::string>{"sell magazines"}));
}

TEST_F(EngineFixture, V10SubjectNeverFindsLevel3) {
  auto s = make_subject(alice_, ProtocolVersion::kV10);
  auto o = make_object(magazine_, ProtocolVersion::kV10);
  ASSERT_TRUE(exchange(s, o));
  EXPECT_EQ(s.discovered().front().level, 2);  // falls back to cover
}

TEST_F(EngineFixture, V20SeekingSubjectFindsLevel3) {
  auto s = make_subject(alice_, ProtocolVersion::kV20, /*seek_l3=*/true);
  auto o = make_object(magazine_, ProtocolVersion::kV20);
  ASSERT_TRUE(exchange(s, o));
  EXPECT_EQ(s.discovered().front().level, 3);
}

TEST_F(EngineFixture, V20NonSeekingSubjectGetsLevel2) {
  auto s = make_subject(alice_, ProtocolVersion::kV20, /*seek_l3=*/false);
  auto o = make_object(magazine_, ProtocolVersion::kV20);
  ASSERT_TRUE(exchange(s, o));
  EXPECT_EQ(s.discovered().front().level, 2);
}

TEST_F(EngineFixture, RevokedSubjectRejected) {
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  o.revoke_subject("alice");
  EXPECT_FALSE(exchange(s, o));
  EXPECT_EQ(o.stats().drops, 1u);
}

TEST_F(EngineFixture, ReplayedQue1AnsweredIdempotently) {
  // A duplicate QUE1 (replay or lossy-link retransmit) is detected and
  // answered with the cached RES1 byte-for-byte: the subject can recover
  // from a lost reply, and the duplicate triggers no fresh crypto.
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  const Bytes que1 = s.start_round();
  const auto first = o.handle(que1, be_.now());
  ASSERT_TRUE(first.has_value());
  const auto dup = o.handle(que1, be_.now());
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(*dup, *first);
  EXPECT_EQ(o.stats().replays_detected, 1u);
  EXPECT_EQ(o.stats().retransmissions, 1u);
  EXPECT_EQ(o.stats().que1_handled, 1u);  // only the fresh one opened state
}

TEST_F(EngineFixture, ReplayedQue1AfterCompletionStaysSilent) {
  // Once the exchange finished, a replayed QUE1 earns no response at all:
  // the session is gone and nothing new can be disclosed.
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  const Bytes que1 = s.start_round();
  const auto res1 = o.handle(que1, be_.now());
  ASSERT_TRUE(res1.has_value());
  const auto que2 = s.handle(*res1, be_.now());
  ASSERT_TRUE(que2.has_value());
  ASSERT_TRUE(o.handle(*que2, be_.now()).has_value());
  EXPECT_FALSE(o.handle(que1, be_.now()).has_value());
  EXPECT_EQ(o.stats().replays_detected, 1u);
}

TEST_F(EngineFixture, DuplicateQue2ResentByteIdentically) {
  // Loss recovery on the last leg: if RES2 was lost, the subject resends
  // QUE2 and must get back exactly the bytes it missed — same nonces, same
  // ciphertext — so an eavesdropper of both copies learns nothing new.
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  const Bytes que1 = s.start_round();
  const auto res1 = o.handle(que1, be_.now());
  ASSERT_TRUE(res1.has_value());
  const auto que2 = s.handle(*res1, be_.now());
  ASSERT_TRUE(que2.has_value());
  const auto res2 = o.handle(*que2, be_.now());
  ASSERT_TRUE(res2.has_value());
  const auto res2_again = o.handle(*que2, be_.now());
  ASSERT_TRUE(res2_again.has_value());
  EXPECT_EQ(*res2_again, *res2);
  EXPECT_EQ(o.stats().retransmissions, 1u);
  // The subject accepts whichever copy arrives; the duplicate is benign.
  ASSERT_FALSE(s.handle(*res2, be_.now()).has_value());
  ASSERT_EQ(s.discovered().size(), 1u);
  EXPECT_FALSE(s.handle(*res2_again, be_.now()).has_value());
  EXPECT_EQ(s.discovered().size(), 1u);
}

TEST_F(EngineFixture, DuplicateRes1ResendsCachedQue2) {
  // Object-side RES1 retransmits must not fork the subject's session: the
  // duplicate gets the cached QUE2 byte-for-byte, not a fresh ECDH.
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  const Bytes que1 = s.start_round();
  const auto res1 = o.handle(que1, be_.now());
  ASSERT_TRUE(res1.has_value());
  const auto que2 = s.handle(*res1, be_.now());
  ASSERT_TRUE(que2.has_value());
  const auto que2_again = s.handle(*res1, be_.now());
  ASSERT_TRUE(que2_again.has_value());
  EXPECT_EQ(*que2_again, *que2);
  EXPECT_EQ(s.stats().retransmissions, 1u);
  // After completion the duplicate RES1 is silently ignored.
  const auto res2 = o.handle(*que2, be_.now());
  ASSERT_TRUE(res2.has_value());
  ASSERT_FALSE(s.handle(*res2, be_.now()).has_value());
  EXPECT_FALSE(s.handle(*res1, be_.now()).has_value());
  EXPECT_EQ(s.discovered().size(), 1u);
}

TEST_F(EngineFixture, MalformedMessagesDropped) {
  auto o = make_object(tv_);
  EXPECT_FALSE(o.handle(Bytes{}, be_.now()).has_value());
  EXPECT_FALSE(o.handle(Bytes{0xFF, 0x00}, be_.now()).has_value());
  auto s = make_subject(alice_);
  (void)s.start_round();
  EXPECT_FALSE(s.handle(Bytes{0x01, 0x02}, be_.now()).has_value());
}

TEST_F(EngineFixture, TamperedQue2SignatureRejected) {
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  const Bytes que1 = s.start_round();
  const auto res1 = o.handle(que1, be_.now());
  ASSERT_TRUE(res1.has_value());
  auto que2 = s.handle(*res1, be_.now());
  ASSERT_TRUE(que2.has_value());
  // Flip one byte inside the QUE2 payload (after headers).
  (*que2)[que2->size() / 2] ^= 0x01;
  EXPECT_FALSE(o.handle(*que2, be_.now()).has_value());
}

TEST_F(EngineFixture, TamperedRes2Rejected) {
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  const Bytes que1 = s.start_round();
  auto res1 = o.handle(que1, be_.now());
  auto que2 = s.handle(*res1, be_.now());
  auto res2 = o.handle(*que2, be_.now());
  ASSERT_TRUE(res2.has_value());
  (*res2)[res2->size() - 1] ^= 0x01;  // MAC byte
  EXPECT_FALSE(s.handle(*res2, be_.now()).has_value());
  EXPECT_TRUE(s.discovered().empty());
}

TEST_F(EngineFixture, StaleRes1FromOldRoundDropped) {
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  const Bytes que1 = s.start_round();
  const auto res1 = o.handle(que1, be_.now());
  (void)s.start_round();  // new round invalidates old R_S
  EXPECT_FALSE(s.handle(*res1, be_.now()).has_value());
}

TEST_F(EngineFixture, ExpiredCertificateRejected) {
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  const Bytes que1 = s.start_round();
  const auto res1 = o.handle(que1, be_.now());
  // Subject rejects an expired object certificate.
  const std::uint64_t far_future = be_.now() + 400ull * 24 * 3600;
  EXPECT_FALSE(s.handle(*res1, far_future).has_value());
}

TEST_F(EngineFixture, MultiGroupSubjectIteratesKeys) {
  auto carol = be_.register_subject("carol", AttributeMap{},
                                    {"counseling", "disability"});
  auto ramp = be_.register_object(
      "ramp-1", AttributeMap{{"type", "door"}}, Level::kL3, {},
      {{"position!='visitor'", "regular", {"open"}}},
      {{"disability", "assist", {"auto-open", "extended timing"}}});
  auto s = make_subject(carol);
  ASSERT_EQ(s.group_key_count(), 2u);

  // Round with key 0 ("counseling") — ramp replies with cover face.
  auto o_ramp = make_object(ramp);
  s.set_group_key_index(0);
  ASSERT_TRUE(exchange(s, o_ramp));
  EXPECT_EQ(s.discovered().back().level, 2);

  // Round with key 1 ("disability") — covert variant found.
  s.set_group_key_index(1);
  auto o_ramp2 = make_object(ramp);
  ASSERT_TRUE(exchange(s, o_ramp2));
  EXPECT_EQ(s.discovered().back().level, 3);
  EXPECT_EQ(s.discovered().back().variant_tag, "assist");
}

// Adversarial bytes: corruptions of every real wire message (and pure
// noise) fed straight into both engines. Nothing may crash or trip UB
// (the unit suites run under ASan in CI); every non-reply must carry a
// nameable status, and cryptographic rejections must be counted.
TEST_F(EngineFixture, AdversarialBytesNeverCrashEngines) {
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  // Harvest one honest wire of each type to mutate.
  const Bytes que1 = s.start_round();
  const auto res1 = o.handle(que1, be_.now());
  ASSERT_TRUE(res1.has_value());
  const auto que2 = s.handle(*res1, be_.now());
  ASSERT_TRUE(que2.has_value());
  const auto res2 = o.handle(*que2, be_.now());
  ASSERT_TRUE(res2.has_value());
  const std::vector<Bytes> honest = {que1, *res1, *que2, *res2};

  crypto::HmacDrbg rng = crypto::make_rng(2024, "engine fuzz");
  for (int iter = 0; iter < 400; ++iter) {
    Bytes wire;
    if (rng.uniform(8) == 0) {
      wire = rng.generate(rng.uniform(600));  // pure noise
    } else {
      wire = honest[rng.uniform(honest.size())];
      switch (rng.uniform(4)) {
        case 0:  // truncate
          wire.resize(rng.uniform(wire.size() + 1));
          break;
        case 1: {  // extend with noise
          const Bytes tail = rng.generate(1 + rng.uniform(64));
          wire.insert(wire.end(), tail.begin(), tail.end());
          break;
        }
        case 2:  // flip one bit
          if (!wire.empty()) {
            wire[rng.uniform(wire.size())] ^=
                static_cast<std::uint8_t>(1u << rng.uniform(8));
          }
          break;
        default:  // overwrite one byte
          if (!wire.empty()) {
            wire[rng.uniform(wire.size())] =
                static_cast<std::uint8_t>(rng.uniform(256));
          }
          break;
      }
    }
    const auto or_ = o.handle(wire, be_.now());
    EXPECT_STRNE(status_name(or_.status), "?") << "iter " << iter;
    const auto sr = s.handle(wire, be_.now());
    EXPECT_STRNE(status_name(sr.status), "?") << "iter " << iter;
  }
  // The fuzz must have exercised the rejection paths, and rejections are
  // a subset of drops (benign duplicates/stale never count as rejects).
  EXPECT_GT(o.stats().rejects, 0u);
  EXPECT_GT(s.stats().rejects, 0u);
  EXPECT_LE(o.stats().rejects, o.stats().drops);
}

TEST_F(EngineFixture, RejectionsCarryStatusAndMetrics) {
  obs::MetricsRegistry metrics;
  ObjectEngineConfig cfg;
  cfg.creds = tv_;
  cfg.admin_pub = be_.admin_public_key();
  cfg.seed = 6;
  cfg.metrics = &metrics;
  ObjectEngine o(std::move(cfg));

  const auto malformed = o.handle(Bytes{0x01, 0x02, 0x03}, be_.now());
  EXPECT_FALSE(malformed.has_value());
  EXPECT_EQ(malformed.status, HandleStatus::kMalformed);
  EXPECT_TRUE(is_reject(malformed.status));
  EXPECT_EQ(metrics.counter("object.reject.malformed").value(), 1u);

  auto s = make_subject(alice_);
  const Bytes que1 = s.start_round();
  const auto res1 = o.handle(que1, be_.now());
  ASSERT_TRUE(res1.has_value());
  auto que2 = s.handle(*res1, be_.now());
  ASSERT_TRUE(que2.has_value());
  (*que2)[que2->size() / 2] ^= 0x01;
  const auto rejected = o.handle(*que2, be_.now());
  EXPECT_FALSE(rejected.has_value());
  EXPECT_TRUE(is_reject(rejected.status));
  EXPECT_EQ(o.stats().rejects, 2u);
}

TEST_F(EngineFixture, BenignStatusesAreNotRejects) {
  // Duplicates and stale traffic occur in healthy lossy runs; they must
  // not count as rejections (or clean-run metrics would grow new keys).
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  const Bytes que1 = s.start_round();
  const auto res1 = o.handle(que1, be_.now());
  ASSERT_TRUE(res1.has_value());
  const auto dup = o.handle(que1, be_.now());
  EXPECT_EQ(dup.status, HandleStatus::kDuplicate);
  EXPECT_FALSE(is_reject(dup.status));
  EXPECT_EQ(o.stats().rejects, 0u);
  EXPECT_EQ(s.stats().rejects, 0u);
}

TEST_F(EngineFixture, SessionCapacityIsBounded) {
  ObjectEngineConfig cfg;
  cfg.creds = tv_;
  cfg.admin_pub = be_.admin_public_key();
  cfg.seed = 6;
  cfg.session_capacity = 4;
  ObjectEngine o(std::move(cfg));

  // Ten distinct QUE1s (ten subjects' worth of fresh nonces) may open at
  // most `session_capacity` sessions; the oldest are evicted LRU-first.
  crypto::HmacDrbg rng = crypto::make_rng(7, "capacity fuzz");
  for (int i = 0; i < 10; ++i) {
    const Bytes wire = encode(Que1{rng.generate(kNonceSize)});
    const auto reply = o.handle(wire, be_.now());
    EXPECT_TRUE(reply.has_value()) << "fresh QUE1 " << i;
  }
  EXPECT_LE(o.open_sessions(), 4u);
  EXPECT_GE(o.stats().evictions, 6u);
}

TEST_F(EngineFixture, SessionsExpireByTtl) {
  ObjectEngineConfig cfg;
  cfg.creds = tv_;
  cfg.admin_pub = be_.admin_public_key();
  cfg.seed = 6;
  cfg.session_ttl_ms = 100;
  ObjectEngine o(std::move(cfg));

  auto s = make_subject(alice_);
  o.advance_clock(0);
  const auto res1 = o.handle(s.start_round(), be_.now());
  ASSERT_TRUE(res1.has_value());
  EXPECT_EQ(o.open_sessions(), 1u);
  o.advance_clock(50);  // young: survives
  EXPECT_EQ(o.open_sessions(), 1u);
  o.advance_clock(151);  // older than the TTL: swept
  EXPECT_EQ(o.open_sessions(), 0u);
  EXPECT_GE(o.stats().evictions, 1u);

  // The session died with its state: the follow-up QUE2 now reads stale.
  const auto que2 = s.handle(*res1, be_.now());
  ASSERT_TRUE(que2.has_value());
  const auto late = o.handle(*que2, be_.now());
  EXPECT_FALSE(late.has_value());
  EXPECT_EQ(late.status, HandleStatus::kStale);
}

TEST_F(EngineFixture, CachedRepliesExpireByTtl) {
  ObjectEngineConfig cfg;
  cfg.creds = tv_;
  cfg.admin_pub = be_.admin_public_key();
  cfg.seed = 6;
  cfg.session_ttl_ms = 100;
  ObjectEngine o(std::move(cfg));

  auto s = make_subject(alice_);
  o.advance_clock(0);
  const auto res1 = o.handle(s.start_round(), be_.now());
  const auto que2 = s.handle(*res1, be_.now());
  ASSERT_TRUE(que2.has_value());
  ASSERT_TRUE(o.handle(*que2, be_.now()).has_value());
  EXPECT_EQ(o.cached_replies(), 1u);
  // Within the TTL a duplicate QUE2 gets the cached byte-identical RES2.
  EXPECT_TRUE(o.handle(*que2, be_.now()).has_value());
  o.advance_clock(200);
  EXPECT_EQ(o.cached_replies(), 0u);
  // Past it, the resend state is gone and the duplicate reads stale.
  const auto late = o.handle(*que2, be_.now());
  EXPECT_FALSE(late.has_value());
  EXPECT_EQ(late.status, HandleStatus::kStale);
}

TEST_F(EngineFixture, ComputeCostsMatchPaperOpCounts) {
  // §IX-B: subject Level 2/3 = 1 sign + 3 verify + 2 ECDH = 27.4 ms on
  // the Nexus 6 model; object same ops = 78.2 ms on the Pi 3 model.
  auto s = make_subject(alice_);
  auto o = make_object(tv_);
  const Bytes que1 = s.start_round();
  (void)s.take_consumed_ms();
  auto res1 = o.handle(que1, be_.now());
  auto que2 = s.handle(*res1, be_.now());
  auto res2 = o.handle(*que2, be_.now());
  double subject_ms = s.take_consumed_ms();
  (void)s.handle(*res2, be_.now());
  subject_ms += s.take_consumed_ms();
  const double object_ms = o.take_consumed_ms();
  // Within 1 ms of the paper's totals (HMAC/AES adds fractions).
  EXPECT_NEAR(subject_ms, 27.4, 2.0);
  EXPECT_NEAR(object_ms, 78.2, 2.5);
}

TEST_F(EngineFixture, Level1SubjectComputeMatchesPaper) {
  auto s = make_subject(alice_);
  auto o = make_object(thermo_);
  const Bytes que1 = s.start_round();
  (void)s.take_consumed_ms();
  auto res1 = o.handle(que1, be_.now());
  EXPECT_EQ(o.take_consumed_ms(), 0.0);  // L1 object does no crypto
  (void)s.handle(*res1, be_.now());
  EXPECT_NEAR(s.take_consumed_ms(), 5.1, 0.1);  // one verification
}

}  // namespace
}  // namespace argus::core
