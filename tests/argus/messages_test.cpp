#include "argus/messages.hpp"

#include <gtest/gtest.h>

#include "argus/session.hpp"
#include "crypto/drbg.hpp"

namespace argus::core {
namespace {

Bytes nonce(std::uint8_t fill) { return Bytes(kNonceSize, fill); }
Bytes mac(std::uint8_t fill) { return Bytes(kMacSize, fill); }

TEST(MessagesTest, Que1RoundTrip) {
  const Message msg = Que1{nonce(1)};
  const auto back = decode(encode(msg));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<Que1>(*back).r_s, nonce(1));
}

TEST(MessagesTest, Res1Level1RoundTrip) {
  const Message msg = Res1Level1{Bytes(200, 7)};
  const auto back = decode(encode(msg));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<Res1Level1>(*back).prof.size(), 200u);
}

TEST(MessagesTest, Res1RoundTrip) {
  const Message msg =
      Res1{nonce(1), nonce(2), Bytes(552, 3), Bytes(65, 4), Bytes(64, 5)};
  const auto back = decode(encode(msg));
  ASSERT_TRUE(back.has_value());
  const auto& m = std::get<Res1>(*back);
  EXPECT_EQ(m.r_o, nonce(2));
  EXPECT_EQ(m.cert.size(), 552u);
  EXPECT_EQ(m.sig.size(), 64u);
}

TEST(MessagesTest, Que2RoundTripWithAndWithoutMac3) {
  Que2 q{nonce(1), Bytes(200, 2), Bytes(552, 3), Bytes(65, 4),
         Bytes(64, 5),  mac(6),       mac(7)};
  auto back = decode(encode(Message{q}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<Que2>(*back).mac_s3, mac(7));

  q.mac_s3.clear();  // v1.0 / v2.0-Level-2 form
  back = decode(encode(Message{q}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::get<Que2>(*back).mac_s3.empty());
}

TEST(MessagesTest, Res2RoundTrip) {
  const Message msg = Res2{nonce(9), Bytes(256, 1), mac(2)};
  const auto back = decode(encode(msg));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<Res2>(*back).sealed_prof.size(), 256u);
}

TEST(MessagesTest, RejectsWrongNonceOrMacSizes) {
  EXPECT_FALSE(decode(encode(Message{Que1{Bytes(27, 0)}})).has_value());
  EXPECT_FALSE(
      decode(encode(Message{Res2{nonce(1), Bytes(16, 0), Bytes(31, 0)}}))
          .has_value());
  Que2 q{nonce(1), {}, {}, {}, {}, Bytes(31, 0), {}};
  EXPECT_FALSE(decode(encode(Message{q})).has_value());
}

TEST(MessagesTest, RejectsGarbage) {
  EXPECT_FALSE(decode({}).has_value());
  EXPECT_FALSE(decode(Bytes{0x00}).has_value());
  EXPECT_FALSE(decode(Bytes{0x63, 0x01, 0x02}).has_value());
  // Truncated QUE1.
  Bytes que1 = encode(Message{Que1{nonce(1)}});
  que1.resize(que1.size() - 3);
  EXPECT_FALSE(decode(que1).has_value());
  // Trailing bytes.
  Bytes extra = encode(Message{Que1{nonce(1)}});
  extra.push_back(0);
  EXPECT_FALSE(decode(extra).has_value());
}

// Seeded fuzz: random well-formed messages must round-trip exactly, and
// random corruptions (truncation, extension, byte flips) must either fail
// to decode or decode to something that re-encodes consistently — never
// crash, never mis-frame.
TEST(MessagesTest, FuzzRoundTripAndCorruption) {
  crypto::HmacDrbg rng = crypto::make_rng(2024, "messages fuzz");
  const auto blob = [&rng](std::size_t max) {
    return rng.generate(rng.uniform(max + 1));
  };
  for (int iter = 0; iter < 300; ++iter) {
    Message msg;
    switch (rng.uniform(5)) {
      case 0:
        msg = Que1{rng.generate(kNonceSize)};
        break;
      case 1:
        msg = Res1Level1{blob(512)};
        break;
      case 2:
        msg = Res1{rng.generate(kNonceSize), rng.generate(kNonceSize),
                   blob(1024), blob(128), blob(128)};
        break;
      case 3: {
        Que2 q{rng.generate(kNonceSize),
               blob(512),
               blob(1024),
               blob(128),
               blob(128),
               rng.generate(kMacSize),
               {}};
        if (rng.uniform(2)) q.mac_s3 = rng.generate(kMacSize);
        msg = q;
        break;
      }
      default:
        msg = Res2{rng.generate(kNonceSize), blob(1024),
                   rng.generate(kMacSize)};
        break;
    }

    const Bytes wire = encode(msg);
    const auto back = decode(wire);
    ASSERT_TRUE(back.has_value()) << "iter " << iter;
    EXPECT_EQ(back->index(), msg.index()) << "iter " << iter;
    EXPECT_EQ(encode(*back), wire) << "iter " << iter;  // exact round-trip

    // Truncation at a random point must never decode to the full message.
    if (!wire.empty()) {
      Bytes cut = wire;
      cut.resize(rng.uniform(wire.size()));
      if (const auto m = decode(cut); m.has_value()) {
        EXPECT_NE(encode(*m), wire) << "iter " << iter;
      }
    }
    // Trailing garbage is rejected outright (strict framing).
    Bytes extended = wire;
    extended.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
    EXPECT_FALSE(decode(extended).has_value()) << "iter " << iter;

    // A random byte flip: decode may fail (size/type fields) or succeed
    // (payload bytes carry no structure), but a success must re-encode to
    // exactly the mutated wire — the codec adds no hidden normalization.
    Bytes flipped = wire;
    const std::size_t pos = rng.uniform(flipped.size());
    flipped[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    if (const auto m = decode(flipped); m.has_value()) {
      EXPECT_EQ(encode(*m), flipped) << "iter " << iter << " pos " << pos;
    }
  }
}

// Pure-noise inputs: decode must reject or parse cleanly, never read out
// of bounds (the asan/ubsan lanes give this test its teeth).
TEST(MessagesTest, FuzzRandomNoiseNeverCrashes) {
  crypto::HmacDrbg rng = crypto::make_rng(7, "messages noise");
  for (int iter = 0; iter < 500; ++iter) {
    Bytes noise = rng.generate(rng.uniform(160));
    if (!noise.empty() && rng.uniform(2)) {
      // Bias the first byte into the valid MsgType range so the parser
      // exercises per-type field framing, not just the type check.
      noise[0] = static_cast<std::uint8_t>(1 + rng.uniform(5));
    }
    if (const auto m = decode(noise); m.has_value()) {
      EXPECT_EQ(encode(*m), noise) << "iter " << iter;
    }
  }
}

TEST(MessagesTest, TypeNames) {
  EXPECT_STREQ(msg_type_name(Message{Que1{}}), "QUE1");
  EXPECT_STREQ(msg_type_name(Message{Res1Level1{}}), "RES1-L1");
  EXPECT_STREQ(msg_type_name(Message{Res1{}}), "RES1");
  EXPECT_STREQ(msg_type_name(Message{Que2{}}), "QUE2");
  EXPECT_STREQ(msg_type_name(Message{Res2{}}), "RES2");
}

TEST(SessionTest, KeyDerivationSeparatesInputs) {
  const Bytes pre_k = str_bytes("premaster");
  const Bytes rs = nonce(1), ro = nonce(2);
  const Bytes k2 = derive_k2(pre_k, rs, ro);
  EXPECT_EQ(k2.size(), 32u);
  EXPECT_NE(k2, derive_k2(pre_k, ro, rs));                // order matters
  EXPECT_NE(k2, derive_k2(str_bytes("other"), rs, ro));   // secret matters
  const Bytes grp = Bytes(32, 9);
  const Bytes k3 = derive_k3(k2, grp, rs, ro);
  EXPECT_NE(k3, k2);
  EXPECT_NE(k3, derive_k3(k2, Bytes(32, 8), rs, ro));     // group key matters
}

TEST(SessionTest, MacLabelsSeparateRoles) {
  const Bytes key(32, 1);
  const Bytes digest(32, 2);
  EXPECT_NE(subject_mac(key, digest), object_mac(key, digest));
}

TEST(SessionTest, TranscriptIncremental) {
  Transcript t1, t2;
  t1.absorb(str_bytes("ab"));
  t1.absorb(str_bytes("cd"));
  t2.absorb(str_bytes("abcd"));
  EXPECT_EQ(t1.digest(), t2.digest());
  // digest() is non-destructive.
  EXPECT_EQ(t1.digest(), t1.digest());
  t1.absorb(str_bytes("e"));
  EXPECT_NE(t1.digest(), t2.digest());
}

TEST(MessagesTest, WireSizesNearPaperTable) {
  // §IX-A: QUE1 28 B, Level-2 RES1 772 B, QUE2 1008 B, RES2 280 B at
  // 128-bit strength. Our framing differs by a few length prefixes; check
  // the same order of magnitude and relative ordering.
  const std::size_t que1 = encode(Message{Que1{nonce(0)}}).size();
  const Message res1 =
      Res1{nonce(0), nonce(0), Bytes(552, 0), Bytes(65, 0), Bytes(64, 0)};
  const Message que2 = Que2{nonce(0),      Bytes(200, 0), Bytes(552, 0),
                            Bytes(65, 0),  Bytes(64, 0),  mac(0),
                            mac(0)};
  const Message res2 = Res2{nonce(0), Bytes(256, 0), mac(0)};
  EXPECT_LT(que1, 40u);                       // ~28 B + framing
  EXPECT_NEAR(encode(res1).size(), 772, 40);
  EXPECT_NEAR(encode(que2).size(), 1008, 60);
  // Ours adds the 28-byte R_O correlator plus length framing.
  EXPECT_NEAR(encode(res2).size(), 280, 60);
}

}  // namespace
}  // namespace argus::core
