#include "pbc/sok.hpp"

#include <gtest/gtest.h>

namespace argus::pbc {
namespace {

class SokTest : public ::testing::Test {
 protected:
  SokTest()
      : scheme_(pairing::default_system()),
        rng_(crypto::make_rng(7, "sok-test")),
        group_(scheme_.create_group(rng_)) {}

  SokScheme scheme_;
  crypto::HmacDrbg rng_;
  GroupAuthority group_;
};

TEST_F(SokTest, FellowsDeriveSameKey) {
  const auto alice = scheme_.issue(group_, "subject:alice");
  const auto vending = scheme_.issue(group_, "object:vending-42");
  const Bytes k1 = scheme_.handshake_key(alice, "object:vending-42");
  const Bytes k2 = scheme_.handshake_key(vending, "subject:alice");
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.size(), 32u);
}

TEST_F(SokTest, NonFellowDerivesDifferentKey) {
  const auto alice = scheme_.issue(group_, "subject:alice");
  const GroupAuthority other = scheme_.create_group(rng_);
  const auto eve = scheme_.issue(other, "subject:eve");
  // Eve (different group) handshaking with Alice's id gets a key that does
  // not match what Alice derives for Eve.
  EXPECT_NE(scheme_.handshake_key(eve, "subject:alice"),
            scheme_.handshake_key(alice, "subject:eve"));
}

TEST_F(SokTest, KeyDependsOnPeerIdentity) {
  const auto alice = scheme_.issue(group_, "subject:alice");
  EXPECT_NE(scheme_.handshake_key(alice, "object:a"),
            scheme_.handshake_key(alice, "object:b"));
}

TEST_F(SokTest, KeyDependsOnGroup) {
  const GroupAuthority g2 = scheme_.create_group(rng_);
  const auto a1 = scheme_.issue(group_, "subject:alice");
  const auto a2 = scheme_.issue(g2, "subject:alice");
  EXPECT_NE(scheme_.handshake_key(a1, "object:o"),
            scheme_.handshake_key(a2, "object:o"));
}

TEST_F(SokTest, DeterministicIssueAndKey) {
  const auto c1 = scheme_.issue(group_, "subject:alice");
  const auto c2 = scheme_.issue(group_, "subject:alice");
  EXPECT_EQ(c1.credential, c2.credential);
  EXPECT_EQ(scheme_.handshake_key(c1, "object:o"),
            scheme_.handshake_key(c2, "object:o"));
}

TEST_F(SokTest, CredentialIsOnCurveSubgroup) {
  const auto& curve = scheme_.system().curve;
  const auto cred = scheme_.issue(group_, "subject:alice");
  EXPECT_TRUE(curve.on_curve(cred.credential));
  EXPECT_TRUE(curve.scalar_mul(cred.credential, curve.params().r).infinity);
}

TEST_F(SokTest, ThreeFellowsPairwiseKeysDistinct) {
  const auto a = scheme_.issue(group_, "a");
  const auto b = scheme_.issue(group_, "b");
  const auto c = scheme_.issue(group_, "c");
  const Bytes kab = scheme_.handshake_key(a, "b");
  const Bytes kac = scheme_.handshake_key(a, "c");
  const Bytes kbc = scheme_.handshake_key(b, "c");
  EXPECT_NE(kab, kac);
  EXPECT_NE(kab, kbc);
  // Consistency both directions.
  EXPECT_EQ(kbc, scheme_.handshake_key(c, "b"));
}

}  // namespace
}  // namespace argus::pbc
