#!/bin/sh
# CLI exit-code contract for tools/benchdiff (the CI soft gate relies on
# it): 0 ok, 2 usage/IO/schema, 3 warn, 4 fail. Fixture trajectories are
# built inline; the verdict *logic* is unit-tested in
# tests/obs/bench_report_test.cpp — this exercises the binary end to end.
set -u

BENCHDIFF="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
rc=0

check() {
  desc="$1"; want="$2"; shift 2
  "$@" > "$DIR/out.txt" 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: exit $got, want $want"
    cat "$DIR/out.txt"
    rc=1
  else
    echo "ok: $desc (exit $got)"
  fi
}

entry() {  # entry VALUE -> one trajectory entry with one gated metric
  printf '{"git_sha":"t","date_utc":"2026-01-01T00:00:00Z","threads":1,"cpus":1,"repeat":1,"metrics":{"virtual.t":{"value":%s,"unit":"ms","source":"virtual","dir":"lower"}}}' "$1"
}

traj() {  # traj NAME FILE VALUES... -> trajectory file
  name="$1"; file="$2"; shift 2
  {
    printf '{"schema":1,"name":"%s","entries":[\n' "$name"
    sep=""
    for v in "$@"; do
      printf '%s' "$sep"; entry "$v"; sep=','
    done
    printf '\n]}\n'
  } > "$file"
}

traj base "$DIR/ok.json"   100 104
traj base "$DIR/warn.json" 100 115
traj base "$DIR/fail.json" 100 150
traj base "$DIR/old.json"  100
traj base "$DIR/new.json"  115
traj other "$DIR/other.json" 100
traj base "$DIR/single.json" 100
traj base "$DIR/empty.json"
echo 'not json' > "$DIR/garbage.json"

check "within thresholds"            0 "$BENCHDIFF" "$DIR/ok.json"
check "regression past --warn"       3 "$BENCHDIFF" "$DIR/warn.json"
check "regression past --fail"       4 "$BENCHDIFF" "$DIR/fail.json"
check "two-file compare warns"       3 "$BENCHDIFF" "$DIR/old.json" "$DIR/new.json"
check "custom thresholds downgrade"  0 "$BENCHDIFF" --warn 20 --fail 50 "$DIR/warn.json"
check "custom thresholds upgrade"    4 "$BENCHDIFF" --warn 5 --fail 10 "$DIR/warn.json"
check "name mismatch is schema error" 2 "$BENCHDIFF" "$DIR/old.json" "$DIR/other.json"
# A first-ever entry is a baseline, not a broken pipeline: exit 0 plus a
# "baseline recorded" note — both single-file and empty-before flavors.
check "single entry is baseline"     0 "$BENCHDIFF" "$DIR/single.json"
if ! grep -q "baseline recorded" "$DIR/out.txt"; then
  echo "FAIL: single-entry baseline: missing 'baseline recorded' note"
  cat "$DIR/out.txt"
  rc=1
fi
check "empty before-file is baseline" 0 "$BENCHDIFF" "$DIR/empty.json" "$DIR/single.json"
check "zero entries cannot compare"  2 "$BENCHDIFF" "$DIR/empty.json"
check "empty after-file is error"    2 "$BENCHDIFF" "$DIR/single.json" "$DIR/empty.json"
check "malformed file"               2 "$BENCHDIFF" "$DIR/garbage.json"
check "missing file"                 2 "$BENCHDIFF" "$DIR/does-not-exist.json"
check "no arguments is usage"        2 "$BENCHDIFF"

exit "$rc"
