#include "backend/registry.hpp"

#include <gtest/gtest.h>

namespace argus::backend {
namespace {

class BackendTest : public ::testing::Test {
 protected:
  BackendTest() : be_(crypto::Strength::b128, 42) {}
  Backend be_;
};

TEST_F(BackendTest, SubjectRegistrationIssuesValidCredentials) {
  const auto cred = be_.register_subject(
      "alice", AttributeMap{{"position", "manager"}, {"department", "X"}});
  EXPECT_TRUE(crypto::verify_certificate(be_.group(), be_.admin_public_key(),
                                         cred.cert, be_.now()));
  EXPECT_TRUE(verify_profile(be_.group(), be_.admin_public_key(), cred.prof));
  EXPECT_EQ(cred.prof.entity_id, "alice");
  // Key pair is consistent.
  const auto pub = be_.group().decode_point(cred.cert.pubkey);
  ASSERT_TRUE(pub.has_value());
  EXPECT_EQ(*pub, cred.keys.pub);
}

TEST_F(BackendTest, DuplicateRegistrationRejected) {
  be_.register_subject("alice", {});
  EXPECT_THROW(be_.register_subject("alice", {}), std::invalid_argument);
}

TEST_F(BackendTest, CoverUpKeyIssuedWhenNoSensitiveAttributes) {
  const auto cred = be_.register_subject("bob", {});
  ASSERT_EQ(cred.group_keys.size(), 1u);
  EXPECT_TRUE(cred.group_keys[0].cover_up);
  EXPECT_EQ(cred.group_keys[0].key.size(), kGroupKeySize);
  // Cover-up keys are unique per subject.
  const auto cred2 = be_.register_subject("carol", {});
  EXPECT_NE(cred.group_keys[0].key, cred2.group_keys[0].key);
}

TEST_F(BackendTest, SecretGroupSharedByFellows) {
  const auto s = be_.register_subject("sam", {}, {"learning-disability"});
  const auto o = be_.register_object(
      "magazine-1", AttributeMap{{"type", "vending"}}, Level::kL3,
      {"sell magazines"},
      {{"position!='visitor'", "employees", {"sell magazines"}}},
      {{"learning-disability", "support", {"dispense support flyers"}}});
  ASSERT_EQ(s.group_keys.size(), 1u);
  EXPECT_FALSE(s.group_keys[0].cover_up);
  ASSERT_EQ(o.variants3.size(), 1u);
  EXPECT_EQ(s.group_keys[0].key, o.variants3[0].group_key);
  EXPECT_EQ(s.group_keys[0].group_id, o.variants3[0].group_id);
  EXPECT_EQ(be_.group_members(s.group_keys[0].group_id),
            (std::vector<std::string>{"sam", "magazine-1"}));
}

TEST_F(BackendTest, Level3RequiresCoverVariants) {
  EXPECT_THROW(
      be_.register_object("bad", {}, Level::kL3, {}, {},
                          {{"attr", "tag", {}}}),
      std::invalid_argument);
}

TEST_F(BackendTest, Level2CannotHaveLevel3Variants) {
  EXPECT_THROW(be_.register_object("bad", {}, Level::kL2, {},
                                   {{"a=='1'", "t", {}}}, {{"attr", "t", {}}}),
               std::invalid_argument);
}

TEST_F(BackendTest, PolicyDrivenAccessibleObjects) {
  be_.register_subject("mgr", AttributeMap{{"position", "manager"}});
  be_.register_subject("eng", AttributeMap{{"position", "engineer"}});
  be_.register_object("lock-1", AttributeMap{{"type", "door lock"}},
                      Level::kL2, {}, {{"position=='manager'", "full", {"open"}}});
  be_.register_object("lamp-1", AttributeMap{{"type", "lamp"}}, Level::kL1,
                      {"light"});
  be_.add_policy("position=='manager'", "type=='door lock'",
                 {"open", "close"});
  be_.add_policy("position!='visitor'", "type=='lamp'", {"toggle"});

  EXPECT_EQ(be_.accessible_objects("mgr"),
            (std::vector<std::string>{"lamp-1", "lock-1"}));
  EXPECT_EQ(be_.accessible_objects("eng"),
            (std::vector<std::string>{"lamp-1"}));
  EXPECT_EQ(be_.authorized_subjects("lock-1"),
            (std::vector<std::string>{"mgr"}));
}

TEST_F(BackendTest, RevocationNotifiesAccessibleObjects) {
  be_.register_subject("mgr", AttributeMap{{"position", "manager"}},
                       {"counseling"});
  be_.register_subject("peer", {}, {"counseling"});
  for (int i = 0; i < 5; ++i) {
    be_.register_object("lock-" + std::to_string(i),
                        AttributeMap{{"type", "door lock"}}, Level::kL2, {},
                        {{"position=='manager'", "full", {"open"}}});
  }
  be_.add_policy("position=='manager'", "type=='door lock'", {"open"});

  const Bytes old_key = be_.group_key(1);
  const auto notice = be_.revoke_subject("mgr");
  EXPECT_EQ(notice.objects_to_notify.size(), 5u);  // N objects
  EXPECT_EQ(notice.groups_rekeyed.size(), 1u);
  EXPECT_EQ(notice.fellows_rekeyed, 1u);  // gamma - 1
  EXPECT_NE(be_.group_key(notice.groups_rekeyed[0]), old_key);
  EXPECT_TRUE(be_.is_revoked("mgr"));
  // Revoked subjects disappear from authorization queries.
  EXPECT_TRUE(be_.authorized_subjects("lock-0").empty());
}

TEST_F(BackendTest, RevokeUnknownSubjectThrows) {
  EXPECT_THROW(be_.revoke_subject("ghost"), std::invalid_argument);
}

TEST_F(BackendTest, ProfileWireSizeAtLeastPaperAverage) {
  const auto cred = be_.register_subject(
      "alice", AttributeMap{{"position", "manager"}});
  EXPECT_GE(cred.prof.serialize().size(), Profile::kMinWireSize);
}

TEST_F(BackendTest, ProfileSerdeRoundTrip) {
  const auto o = be_.register_object(
      "tv-1", AttributeMap{{"type", "multimedia"}}, Level::kL2,
      {"play"}, {{"position=='manager'", "managers", {"play", "configure"}}});
  const Bytes wire = o.variants2[0].prof.serialize();
  const auto parsed = Profile::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->variant_tag, "managers");
  EXPECT_EQ(parsed->services,
            (std::vector<std::string>{"play", "configure"}));
  EXPECT_TRUE(verify_profile(be_.group(), be_.admin_public_key(), *parsed));
}

TEST_F(BackendTest, ProfileForgeryDetected) {
  const auto cred = be_.register_subject("alice", {});
  Profile forged = cred.prof;
  forged.attributes.set("position", "ceo");
  EXPECT_FALSE(verify_profile(be_.group(), be_.admin_public_key(), forged));
}

TEST_F(BackendTest, GroupKeyRotationForUnknownGroupThrows) {
  EXPECT_THROW(be_.rotate_group_key(999), std::invalid_argument);
  EXPECT_THROW(be_.group_key(999), std::invalid_argument);
}

TEST_F(BackendTest, DeterministicGivenSeed) {
  Backend a(crypto::Strength::b128, 7);
  Backend b(crypto::Strength::b128, 7);
  const auto ca = a.register_subject("x", {});
  const auto cb = b.register_subject("x", {});
  EXPECT_EQ(ca.keys.priv, cb.keys.priv);
  EXPECT_EQ(ca.group_keys[0].key, cb.group_keys[0].key);
}

}  // namespace
}  // namespace argus::backend
