#include "backend/predicate.hpp"

#include <gtest/gtest.h>

namespace argus::backend {
namespace {

AttributeMap manager_x() {
  return AttributeMap{{"position", "manager"}, {"department", "X"}};
}

TEST(PredicateTest, SimpleEquality) {
  const auto p = Predicate::parse("position=='manager'");
  EXPECT_TRUE(p.matches(manager_x()));
  EXPECT_FALSE(p.matches(AttributeMap{{"position", "intern"}}));
  EXPECT_FALSE(p.matches(AttributeMap{}));
}

TEST(PredicateTest, Inequality) {
  const auto p = Predicate::parse("position!='visitor'");
  EXPECT_TRUE(p.matches(manager_x()));
  EXPECT_FALSE(p.matches(AttributeMap{{"position", "visitor"}}));
  // Missing attribute != value: treated as not-equal, thus true.
  EXPECT_TRUE(p.matches(AttributeMap{}));
}

TEST(PredicateTest, PaperExample) {
  const auto p =
      Predicate::parse("position=='manager' && department=='X'");
  EXPECT_TRUE(p.matches(manager_x()));
  EXPECT_FALSE(p.matches(AttributeMap{{"position", "manager"}}));
  EXPECT_FALSE(p.matches(
      AttributeMap{{"position", "manager"}, {"department", "Y"}}));
}

TEST(PredicateTest, OrAndPrecedence) {
  // && binds tighter than ||.
  const auto p = Predicate::parse("a=='1' || b=='2' && c=='3'");
  EXPECT_TRUE(p.matches(AttributeMap{{"a", "1"}}));
  EXPECT_TRUE(p.matches(AttributeMap{{"b", "2"}, {"c", "3"}}));
  EXPECT_FALSE(p.matches(AttributeMap{{"b", "2"}}));
}

TEST(PredicateTest, ParenthesesOverridePrecedence) {
  const auto p = Predicate::parse("(a=='1' || b=='2') && c=='3'");
  EXPECT_FALSE(p.matches(AttributeMap{{"a", "1"}}));
  EXPECT_TRUE(p.matches(AttributeMap{{"a", "1"}, {"c", "3"}}));
}

TEST(PredicateTest, Negation) {
  const auto p = Predicate::parse("!(role=='visitor')");
  EXPECT_TRUE(p.matches(AttributeMap{{"role", "staff"}}));
  EXPECT_FALSE(p.matches(AttributeMap{{"role", "visitor"}}));
}

TEST(PredicateTest, ValuesMayContainSpaces) {
  const auto p = Predicate::parse("type=='door lock'");
  EXPECT_TRUE(p.matches(AttributeMap{{"type", "door lock"}}));
}

TEST(PredicateTest, AlwaysTrue) {
  EXPECT_TRUE(Predicate::always_true().matches(AttributeMap{}));
}

TEST(PredicateTest, SyntaxErrors) {
  EXPECT_THROW(Predicate::parse(""), std::invalid_argument);
  EXPECT_THROW(Predicate::parse("a=="), std::invalid_argument);
  EXPECT_THROW(Predicate::parse("a=='x' &&"), std::invalid_argument);
  EXPECT_THROW(Predicate::parse("a=='x' garbage"), std::invalid_argument);
  EXPECT_THROW(Predicate::parse("(a=='x'"), std::invalid_argument);
  EXPECT_THROW(Predicate::parse("a='x'"), std::invalid_argument);
  EXPECT_THROW(Predicate::parse("a=='x"), std::invalid_argument);
}

TEST(PredicateTest, ToAbePolicyMonotone) {
  const auto p =
      Predicate::parse("position=='manager' && department=='X'");
  const auto tree = p.to_abe_policy();
  EXPECT_TRUE(tree.valid());
  EXPECT_EQ(tree.leaf_count(), 2u);
  EXPECT_TRUE(tree.satisfied_by({"position=manager", "department=X"}));
  EXPECT_FALSE(tree.satisfied_by({"position=manager"}));
}

TEST(PredicateTest, ToAbePolicyOr) {
  const auto p = Predicate::parse("a=='1' || b=='2'");
  const auto tree = p.to_abe_policy();
  EXPECT_TRUE(tree.satisfied_by({"a=1"}));
  EXPECT_TRUE(tree.satisfied_by({"b=2"}));
  EXPECT_FALSE(tree.satisfied_by({"c=3"}));
}

TEST(PredicateTest, ToAbePolicyRejectsNonMonotone) {
  EXPECT_THROW(Predicate::parse("a!='1'").to_abe_policy(), std::domain_error);
  EXPECT_THROW(Predicate::parse("!(a=='1')").to_abe_policy(),
               std::domain_error);
  EXPECT_THROW(Predicate::always_true().to_abe_policy(), std::domain_error);
}

TEST(PredicateTest, EqualityTokens) {
  const auto p = Predicate::parse("a=='1' && (b=='2' || a=='1')");
  EXPECT_EQ(p.equality_tokens(),
            (std::set<std::string>{"a=1", "b=2"}));
}

TEST(PredicateTest, AttributeTokens) {
  const AttributeMap m{{"a", "1"}, {"b", "2"}};
  EXPECT_EQ(m.tokens(), (std::set<std::string>{"a=1", "b=2"}));
}

TEST(PredicateTest, AttributeMapSerdeRoundTrip) {
  const AttributeMap m{{"position", "manager"}, {"department", "X"}};
  const auto parsed = AttributeMap::parse(m.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, m);
  EXPECT_FALSE(AttributeMap::parse(Bytes{0xFF}).has_value());
}

}  // namespace
}  // namespace argus::backend
