#include "backend/credentials_io.hpp"

#include <gtest/gtest.h>

namespace argus::backend {
namespace {

class CredentialsIoTest : public ::testing::Test {
 protected:
  CredentialsIoTest() : be_(crypto::Strength::b128, 4242) {}
  Backend be_;
};

TEST_F(CredentialsIoTest, SubjectRoundTrip) {
  const auto creds = be_.register_subject(
      "alice", AttributeMap{{"position", "manager"}}, {"counseling"});
  const Bytes wire = export_subject_credentials(creds, be_.group());
  const auto back = import_subject_credentials(wire, be_.group());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, "alice");
  EXPECT_EQ(back->keys.priv, creds.keys.priv);
  EXPECT_EQ(back->keys.pub, creds.keys.pub);
  EXPECT_EQ(back->cert.serialize(), creds.cert.serialize());
  EXPECT_EQ(back->prof.serialize(), creds.prof.serialize());
  ASSERT_EQ(back->group_keys.size(), 1u);
  EXPECT_EQ(back->group_keys[0].key, creds.group_keys[0].key);
}

TEST_F(CredentialsIoTest, CoverUpFlagNotSerialized) {
  // A cover-up key must be indistinguishable from a real one on disk.
  const auto creds = be_.register_subject("bob", {});
  ASSERT_TRUE(creds.group_keys[0].cover_up);
  const auto back = import_subject_credentials(
      export_subject_credentials(creds, be_.group()), be_.group());
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->group_keys[0].cover_up);  // default, no marker on wire
}

TEST_F(CredentialsIoTest, ObjectRoundTripAllLevels) {
  const auto l1 = be_.register_object("s1", {}, Level::kL1, {"read"});
  const auto l3 = be_.register_object(
      "k1", AttributeMap{{"type", "kiosk"}}, Level::kL3, {"info"},
      {{"position=='employee'", "staff", {"use"}}},
      {{"support", "covert", {"use", "support"}}});
  for (const auto& creds : {l1, l3}) {
    const Bytes wire = export_object_credentials(creds, be_.group());
    const auto back = import_object_credentials(wire, be_.group());
    ASSERT_TRUE(back.has_value()) << creds.id;
    EXPECT_EQ(back->id, creds.id);
    EXPECT_EQ(back->level, creds.level);
    EXPECT_EQ(back->variants2.size(), creds.variants2.size());
    EXPECT_EQ(back->variants3.size(), creds.variants3.size());
  }
  const auto back = import_object_credentials(
      export_object_credentials(l3, be_.group()), be_.group());
  EXPECT_EQ(back->variants2[0].predicate.source(), "position=='employee'");
  EXPECT_EQ(back->variants3[0].group_key, l3.variants3[0].group_key);
}

TEST_F(CredentialsIoTest, RejectsTamperedPrivateKey) {
  const auto creds = be_.register_subject("carol", {});
  Bytes wire = export_subject_credentials(creds, be_.group());
  // The private key begins shortly after the version/role/id header;
  // flip a byte there and the pub/priv consistency check must fire.
  wire[12] ^= 0x01;
  EXPECT_FALSE(import_subject_credentials(wire, be_.group()).has_value());
}

TEST_F(CredentialsIoTest, RejectsGarbageAndWrongRole) {
  EXPECT_FALSE(import_subject_credentials({}, be_.group()).has_value());
  EXPECT_FALSE(
      import_subject_credentials(Bytes(40, 0xAB), be_.group()).has_value());
  const auto obj = be_.register_object("o", {}, Level::kL1, {});
  const Bytes obj_wire = export_object_credentials(obj, be_.group());
  EXPECT_FALSE(import_subject_credentials(obj_wire, be_.group()).has_value());
  const auto subj = be_.register_subject("s", {});
  const Bytes subj_wire = export_subject_credentials(subj, be_.group());
  EXPECT_FALSE(import_object_credentials(subj_wire, be_.group()).has_value());
}

TEST_F(CredentialsIoTest, RejectsWrongVersion) {
  const auto creds = be_.register_subject("dave", {});
  Bytes wire = export_subject_credentials(creds, be_.group());
  wire[1] ^= 0xFF;  // version field
  EXPECT_FALSE(import_subject_credentials(wire, be_.group()).has_value());
}

TEST_F(CredentialsIoTest, ImportedCredentialsStillVerify) {
  const auto creds = be_.register_subject("erin", {});
  const auto back = import_subject_credentials(
      export_subject_credentials(creds, be_.group()), be_.group());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(crypto::verify_certificate(be_.group(), be_.admin_public_key(),
                                         back->cert, be_.now()));
  EXPECT_TRUE(verify_profile(be_.group(), be_.admin_public_key(), back->prof));
}

TEST(RevocationTest, SignAndVerify) {
  Backend be(crypto::Strength::b128, 1);
  be.register_subject("mallory", {});
  const auto rev = be.issue_revocation("mallory");
  EXPECT_EQ(rev.seq, 1u);
  EXPECT_TRUE(verify_revocation(be.group(), be.admin_public_key(), rev));
  // Serde round trip.
  const auto parsed = SignedRevocation::parse(rev.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(verify_revocation(be.group(), be.admin_public_key(), *parsed));
  // Tampering detected.
  SignedRevocation forged = rev;
  forged.subject_id = "alice";
  EXPECT_FALSE(verify_revocation(be.group(), be.admin_public_key(), forged));
  // Sequence numbers increase.
  EXPECT_EQ(be.issue_revocation("mallory").seq, 2u);
}

TEST(RevocationTest, ParseRejectsGarbage) {
  EXPECT_FALSE(SignedRevocation::parse({}).has_value());
  EXPECT_FALSE(SignedRevocation::parse(Bytes(5, 1)).has_value());
}

}  // namespace
}  // namespace argus::backend
