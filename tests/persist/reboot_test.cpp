// Reboot-from-snapshot regression: the RebootPolicy wiring in the
// discovery driver. kBlank (the default) must be byte-identical to the
// pre-persistence builds whether or not kFromSnapshot is merely
// *selectable*; an armed kFromSnapshot plan must capture a snapshot at
// crash time, restore it at reboot, and let the rebooted object finish
// the round with the same discovery set an uninterrupted run produces.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "argus/discovery.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"

namespace argus::core {
namespace {

harness::SweepPoint base_point() {
  harness::SweepPoint p;
  p.level = 2;
  p.objects = 4;
  p.seed = 17;
  return p;
}

/// (object, variant) pairs — the discovery set, order-independent.
std::set<std::pair<std::string, std::string>> discovery_set(
    const DiscoveryReport& report) {
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& svc : report.services) {
    out.emplace(svc.object_id, svc.variant_tag);
  }
  return out;
}

std::string run_digest(const DiscoveryScenario& scenario) {
  harness::RunSpec spec;
  spec.label = "reboot-policy";
  spec.scenarios.push_back(scenario);
  const auto results = harness::SweepRunner({.threads = 1})
                           .run(1, [&](std::size_t) { return spec; });
  return results[0].digest;
}

TEST(RebootPolicy, FaultFreeRunsAreBitIdenticalAcrossPolicies) {
  // With no fault armed, selecting kFromSnapshot must change nothing:
  // the policy only matters once a crash actually fires, so trace,
  // counters, and report stay byte-for-byte the golden bytes.
  DiscoveryScenario blank = harness::make_scenario(base_point());
  DiscoveryScenario snap = harness::make_scenario(base_point());
  snap.faults.reboot_policy = fault::RebootPolicy::kFromSnapshot;
  EXPECT_EQ(run_digest(blank), run_digest(snap));
}

TEST(RebootPolicy, ScriptedRebootResumesFromSnapshotAndRediscovers) {
  // Uninterrupted baseline.
  const DiscoveryReport clean =
      run_discovery(harness::make_scenario(base_point()));
  const auto want = discovery_set(clean);
  ASSERT_FALSE(want.empty());

  // Same fleet, but object 1 crashes mid-round and reboots 300 ms later
  // — resuming from the snapshot captured at crash time.
  DiscoveryScenario sc = harness::make_scenario(base_point());
  obs::MetricsRegistry metrics;
  sc.metrics = &metrics;
  sc.faults.reboot_policy = fault::RebootPolicy::kFromSnapshot;
  fault::FaultEvent ev;
  ev.object = 1;
  ev.kind = fault::FaultKind::kCrash;
  ev.at_ms = 1;
  ev.duration_ms = 300;
  sc.faults.scripted.push_back(ev);

  const DiscoveryReport report = run_discovery(sc);
  EXPECT_EQ(discovery_set(report), want)
      << "snapshot-rebooted fleet must converge on the uninterrupted "
         "discovery set";

  // The persistence hooks actually ran: one snapshot at crash, one
  // successful restore at reboot, no fallback.
  const auto& counters = metrics.counters();
  const auto count = [&](const char* name) -> std::uint64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
  };
  EXPECT_EQ(count("persist.snapshot"), 1u);
  EXPECT_EQ(count("persist.restore"), 1u);
  EXPECT_EQ(count("persist.restore_failed"), 0u);
  EXPECT_EQ(count("fault.crash"), 1u);
  EXPECT_EQ(count("fault.reboot"), 1u);
}

TEST(RebootPolicy, BlankRebootStillTracedAsBlank) {
  // The historical default: reboot with an empty session table, no
  // persist.* counters at all.
  DiscoveryScenario sc = harness::make_scenario(base_point());
  obs::MetricsRegistry metrics;
  sc.metrics = &metrics;
  fault::FaultEvent ev;
  ev.object = 1;
  ev.kind = fault::FaultKind::kCrash;
  ev.at_ms = 1;
  ev.duration_ms = 300;
  sc.faults.scripted.push_back(ev);

  (void)run_discovery(sc);
  const auto& counters = metrics.counters();
  EXPECT_EQ(counters.find("persist.snapshot"), counters.end());
  EXPECT_EQ(counters.find("persist.restore"), counters.end());
  EXPECT_EQ(counters.find("fault.crash")->second.value(), 1u);
}

TEST(RebootPolicy, SnapshotPathWritesRestorableFleetBundle) {
  // scenario.snapshot_path dumps the final engine states as a sealed
  // fleet bundle; every section restores into a freshly-built testbed.
  const std::string path =
      ::testing::TempDir() + "reboot_fleet_bundle.snap";
  DiscoveryScenario sc = harness::make_scenario(base_point());
  sc.snapshot_path = path;
  (void)run_discovery(sc);

  const persist::ReadResult read = persist::read_snapshot_file(path);
  ASSERT_TRUE(read);
  const persist::BundleResult bundle = persist::open_bundle(read.data);
  ASSERT_TRUE(bundle);
  ASSERT_EQ(bundle.entries.size(), 5u);  // subject + 4 objects

  DiscoveryScenario fresh = harness::make_scenario(base_point());
  DiscoveryTestbed tb(fresh);
  for (const auto& [name, blob] : bundle.entries) {
    if (name == "subject") {
      EXPECT_EQ(tb.restore_subject(blob), persist::RestoreError::kOk);
    } else {
      ASSERT_TRUE(name.starts_with("object:")) << name;
      const std::size_t idx = static_cast<std::size_t>(
          std::stoul(name.substr(std::string("object:obj-").size())));
      EXPECT_EQ(tb.restore_object(idx, blob), persist::RestoreError::kOk)
          << name;
    }
  }
  // The restored fleet carries the run's protocol state forward.
  EXPECT_GT(tb.gauges().engine_state_total(), 0u);
}

}  // namespace
}  // namespace argus::core
