// Snapshot envelope semantics and engine/backend restore contracts:
// every RestoreError path is reachable and total (no throws, no partial
// application), restores are blank-or-exact, and a successful engine
// restore rotates the resumption epoch and drops every cached premaster.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "argus/object_engine.hpp"
#include "argus/subject_engine.hpp"
#include "backend/registry.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"
#include "persist/snapshot.hpp"

namespace argus::persist {
namespace {

using backend::AttributeMap;
using backend::Backend;
using backend::Level;
using core::ObjectEngine;
using core::ObjectEngineConfig;
using core::ResumptionParams;
using core::SubjectEngine;
using core::SubjectEngineConfig;

Bytes payload_bytes() { return Bytes{1, 2, 3, 4, 5}; }

TEST(SnapshotEnvelope, RoundTrip) {
  const Bytes sealed =
      seal_snapshot(SnapshotKind::kObjectEngine, payload_bytes());
  const OpenResult open = open_snapshot(sealed, SnapshotKind::kObjectEngine);
  ASSERT_TRUE(open);
  EXPECT_EQ(open.payload, payload_bytes());
}

TEST(SnapshotEnvelope, EmptyAndShortBuffersAreTruncated) {
  EXPECT_EQ(open_snapshot({}, SnapshotKind::kBackend).error,
            RestoreError::kTruncated);
  const Bytes sealed = seal_snapshot(SnapshotKind::kBackend, payload_bytes());
  const Bytes header_only(sealed.begin(), sealed.begin() + 8);
  EXPECT_EQ(open_snapshot(header_only, SnapshotKind::kBackend).error,
            RestoreError::kTruncated);
}

TEST(SnapshotEnvelope, WrongMagic) {
  Bytes sealed = seal_snapshot(SnapshotKind::kBackend, payload_bytes());
  sealed[0] = 'X';
  EXPECT_EQ(open_snapshot(sealed, SnapshotKind::kBackend).error,
            RestoreError::kBadMagic);
}

/// Hand-seal an envelope with an arbitrary version/kind byte and a valid
/// checksum, so version/kind rejection is tested independently of the
/// checksum gate (in-place mutation would trip kBadChecksum first).
Bytes craft(std::uint32_t version, std::uint8_t kind, ByteSpan payload) {
  ByteWriter w;
  const std::uint8_t magic[4] = {'A', 'R', 'G', 'S'};
  w.raw(ByteSpan(magic, 4));
  w.u32(version);
  w.u8(kind);
  w.bytes32(payload);
  Bytes out = w.take();
  const Bytes sum = crypto::Sha256::hash(out);
  out.insert(out.end(), sum.begin(), sum.end());
  return out;
}

TEST(SnapshotEnvelope, UnknownVersionRejected) {
  const Bytes sealed = craft(
      kSnapshotVersion + 1,
      static_cast<std::uint8_t>(SnapshotKind::kBackend), payload_bytes());
  EXPECT_EQ(open_snapshot(sealed, SnapshotKind::kBackend).error,
            RestoreError::kBadVersion);
}

TEST(SnapshotEnvelope, WrongAndUnknownKindRejected) {
  const Bytes subject =
      seal_snapshot(SnapshotKind::kSubjectEngine, payload_bytes());
  EXPECT_EQ(open_snapshot(subject, SnapshotKind::kObjectEngine).error,
            RestoreError::kBadKind);
  const Bytes unknown = craft(kSnapshotVersion, 0x7f, payload_bytes());
  EXPECT_EQ(open_snapshot(unknown, SnapshotKind::kBackend).error,
            RestoreError::kBadKind);
}

TEST(SnapshotEnvelope, BitFlipAndExtensionAreChecksumFailures) {
  const Bytes sealed = seal_snapshot(SnapshotKind::kFleet, payload_bytes());
  for (const std::size_t i : {std::size_t{5}, sealed.size() / 2,
                              sealed.size() - 1}) {
    Bytes flipped = sealed;
    flipped[i] ^= 0x01;
    EXPECT_EQ(open_snapshot(flipped, SnapshotKind::kFleet).error,
              RestoreError::kBadChecksum)
        << "flip at byte " << i;
  }
  Bytes extended = sealed;
  extended.push_back(0xee);
  EXPECT_EQ(open_snapshot(extended, SnapshotKind::kFleet).error,
            RestoreError::kBadChecksum);
}

TEST(SnapshotEnvelope, BundleRoundTripAndSectionIsolation) {
  const Bytes a{1, 2};
  const Bytes b{3};
  const BundleEntries entries = {
      {"subject", seal_snapshot(SnapshotKind::kSubjectEngine, a)},
      {"object:tv", seal_snapshot(SnapshotKind::kObjectEngine, b)},
  };
  const Bytes sealed = seal_bundle(entries);
  const BundleResult opened = open_bundle(sealed);
  ASSERT_TRUE(opened);
  ASSERT_EQ(opened.entries.size(), 2u);
  EXPECT_EQ(opened.entries[0].first, "subject");
  EXPECT_EQ(opened.entries[1].first, "object:tv");
  // One corrupt section must not invalidate the bundle or its neighbours:
  // sections are opaque here, and each one carries its own envelope.
  BundleEntries damaged = entries;
  damaged[1].second[10] ^= 0x40;
  const BundleResult part = open_bundle(seal_bundle(damaged));
  ASSERT_TRUE(part);
  EXPECT_TRUE(open_snapshot(part.entries[0].second,
                            SnapshotKind::kSubjectEngine));
  EXPECT_EQ(open_snapshot(part.entries[1].second,
                          SnapshotKind::kObjectEngine)
                .error,
            RestoreError::kBadChecksum);
}

TEST(SnapshotEnvelope, FileHelpers) {
  const std::string path = ::testing::TempDir() + "persist_file_test.snap";
  const Bytes sealed = seal_snapshot(SnapshotKind::kBackend, payload_bytes());
  ASSERT_TRUE(write_snapshot_file(path, sealed));
  const ReadResult read = read_snapshot_file(path);
  ASSERT_TRUE(read);
  EXPECT_EQ(read.data, sealed);
  std::remove(path.c_str());
  EXPECT_EQ(read_snapshot_file(path).error, RestoreError::kIoError);
}

// ---------------------------------------------------------------------------
// Engine and backend contracts.

class EnginePersistFixture : public ::testing::Test {
 protected:
  EnginePersistFixture() : be_(crypto::Strength::b128, 7171) {
    alice_ = be_.register_subject(
        "alice", AttributeMap{{"position", "manager"}}, {"support"});
    tv_ = be_.register_object(
        "tv-1", AttributeMap{{"type", "multimedia"}}, Level::kL2, {},
        {{"position=='manager'", "managers", {"play"}}});
    radio_ = be_.register_object(
        "radio-1", AttributeMap{{"type", "multimedia"}}, Level::kL2, {},
        {{"position=='manager'", "managers", {"listen"}}});
  }

  SubjectEngine make_subject(const ResumptionParams& res = {}) {
    SubjectEngineConfig cfg;
    cfg.creds = alice_;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = 5;
    cfg.resumption = res;
    return SubjectEngine(std::move(cfg));
  }

  ObjectEngine make_object(const backend::ObjectCredentials& creds,
                           const ResumptionParams& res = {}) {
    ObjectEngineConfig cfg;
    cfg.creds = creds;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = 6;
    cfg.resumption = res;
    return ObjectEngine(std::move(cfg));
  }

  /// One full discovery exchange; returns the QUE1 used.
  Bytes exchange(SubjectEngine& s, ObjectEngine& o) {
    const Bytes que1 = s.start_round();
    const auto res1 = o.handle(que1, be_.now());
    EXPECT_TRUE(res1);
    const auto que2 = s.handle(*res1, be_.now());
    EXPECT_TRUE(que2);
    const auto res2 = o.handle(*que2, be_.now());
    EXPECT_TRUE(res2);
    EXPECT_EQ(s.handle(*res2, be_.now()).status, core::HandleStatus::kOk);
    return que1;
  }

  static ResumptionParams enabled_resumption() {
    ResumptionParams r;
    r.enabled = true;
    return r;
  }

  Backend be_;
  backend::SubjectCredentials alice_;
  backend::ObjectCredentials tv_, radio_;
};

TEST_F(EnginePersistFixture, ObjectRestoreIsExactAndIdempotent) {
  auto s = make_subject();
  auto o = make_object(tv_);
  const Bytes que1 = exchange(s, o);
  ASSERT_GT(o.open_sessions() + o.cached_replies(), 0u);
  const Bytes blob = o.snapshot();

  ASSERT_EQ(o.restore(blob), RestoreError::kOk);
  const Bytes digest_once = o.state_digest();
  const std::size_t sessions = o.open_sessions();
  const std::size_t replies = o.cached_replies();
  const std::size_t replays = o.replay_entries();

  // Restoring the same blob again lands on the identical state: the
  // restore is a pure function of (config, blob), no residue.
  ASSERT_EQ(o.restore(blob), RestoreError::kOk);
  EXPECT_EQ(o.state_digest(), digest_once);
  EXPECT_EQ(o.open_sessions(), sessions);
  EXPECT_EQ(o.cached_replies(), replies);
  EXPECT_EQ(o.replay_entries(), replays);

  // Behavioral exactness: the restored replay window still recognizes
  // the original round's nonce — a completed exchange replays as a
  // cached resend or stale-silence, never as fresh work.
  const std::uint64_t seen_replays = o.stats().replays_detected;
  const auto dup = o.handle(que1, be_.now());
  EXPECT_TRUE(dup.status == core::HandleStatus::kDuplicate ||
              dup.status == core::HandleStatus::kStale)
      << static_cast<int>(dup.status);
  EXPECT_EQ(o.stats().replays_detected, seen_replays + 1);
}

TEST_F(EnginePersistFixture, SubjectRestorePreservesDiscoveries) {
  auto s = make_subject();
  auto o = make_object(tv_);
  exchange(s, o);
  ASSERT_EQ(s.discovered().size(), 1u);
  const Bytes blob = s.snapshot();

  ASSERT_EQ(s.restore(blob), RestoreError::kOk);
  const Bytes digest_once = s.state_digest();
  ASSERT_EQ(s.discovered().size(), 1u);
  EXPECT_EQ(s.discovered()[0].object_id, "tv-1");

  ASSERT_EQ(s.restore(blob), RestoreError::kOk);
  EXPECT_EQ(s.state_digest(), digest_once);
}

TEST_F(EnginePersistFixture, IdentityMismatchLeavesEngineBlank) {
  auto s = make_subject();
  auto tv = make_object(tv_);
  auto radio = make_object(radio_);
  exchange(s, tv);
  exchange(s, radio);
  const Bytes tv_blob = tv.snapshot();

  // tv's state must never restore into radio: intact envelope, wrong
  // identity — and the failed restore leaves radio blank, not half-tv.
  EXPECT_EQ(radio.restore(tv_blob), RestoreError::kIdentityMismatch);
  EXPECT_EQ(radio.open_sessions(), 0u);
  EXPECT_EQ(radio.cached_replies(), 0u);
  EXPECT_EQ(radio.replay_entries(), 0u);

  // Wrong state machine entirely: a subject blob into an object engine.
  EXPECT_EQ(tv.restore(s.snapshot()), RestoreError::kBadKind);
  EXPECT_EQ(tv.open_sessions(), 0u);
}

TEST_F(EnginePersistFixture, FailedRestoreMatchesFreshEngine) {
  auto o = make_object(tv_);
  const Bytes blank = o.state_digest();
  auto s = make_subject();
  exchange(s, o);
  ASSERT_NE(o.state_digest(), blank);

  EXPECT_EQ(o.restore(Bytes{0xde, 0xad}), RestoreError::kTruncated);
  EXPECT_EQ(o.state_digest(), blank);
}

TEST_F(EnginePersistFixture, RestoreRotatesEpochAndDropsPremasters) {
  auto s = make_subject(enabled_resumption());
  auto o = make_object(tv_, enabled_resumption());
  exchange(s, o);
  ASSERT_EQ(o.resume_entries(), 1u);
  ASSERT_EQ(s.resume_entries(), 1u);

  // Object side: the premaster cache is parsed but never revived, and
  // the semi-static epoch is rotated past the snapshot's.
  ASSERT_EQ(o.restore(o.snapshot()), RestoreError::kOk);
  EXPECT_EQ(o.resume_entries(), 0u);
  EXPECT_EQ(o.stats().resumption_dropped, 1u);

  // Subject side keeps the same invariant.
  ASSERT_EQ(s.restore(s.snapshot()), RestoreError::kOk);
  EXPECT_EQ(s.resume_entries(), 0u);
  EXPECT_EQ(s.stats().resumption_dropped, 1u);

  // The next exchange cannot be a resumption hit — stale premaster
  // material must never survive a reboot.
  exchange(s, o);
  EXPECT_EQ(o.stats().resumption_hits, 0u);
  EXPECT_EQ(s.stats().resumption_hits, 0u);
  EXPECT_EQ(o.stats().resumption_misses, 2u);
}

TEST_F(EnginePersistFixture, BackendRoundTripIsExact) {
  const Bytes digest_before = be_.state_digest();
  const Bytes blob = be_.snapshot();

  // Mutate past the snapshot point, then restore: exact rewind.
  (void)be_.register_subject("bob", AttributeMap{{"position", "intern"}});
  (void)be_.register_object("lamp", AttributeMap{{"type", "light"}},
                            Level::kL1, {"read"});
  ASSERT_NE(be_.state_digest(), digest_before);
  ASSERT_EQ(be_.restore(blob), RestoreError::kOk);
  EXPECT_EQ(be_.state_digest(), digest_before);

  // Determinism after restore: the rewound RNG and counters replay the
  // same registration into byte-identical state.
  (void)be_.register_subject("bob", AttributeMap{{"position", "intern"}});
  const Bytes after_once = be_.state_digest();
  ASSERT_EQ(be_.restore(blob), RestoreError::kOk);
  (void)be_.register_subject("bob", AttributeMap{{"position", "intern"}});
  EXPECT_EQ(be_.state_digest(), after_once);
}

TEST_F(EnginePersistFixture, BackendRejectsForeignAndCorruptSnapshots) {
  const Bytes digest_before = be_.state_digest();
  // A backend with another seed: intact snapshot, different identity.
  Backend other(crypto::Strength::b128, 9999);
  EXPECT_EQ(be_.restore(other.snapshot()), RestoreError::kIdentityMismatch);
  // The failed restore left a blank backend (admin key regenerated from
  // the seed), so rebuilding the original registrations is still possible
  // — but the pre-failure state is gone, proving no partial application.
  EXPECT_NE(be_.state_digest(), digest_before);

  Bytes corrupt = other.snapshot();
  corrupt[corrupt.size() / 2] ^= 0x10;
  EXPECT_EQ(be_.restore(corrupt), RestoreError::kBadChecksum);
}

}  // namespace
}  // namespace argus::persist
