// Seeded snapshot-corruption fuzz: truncations, bit flips, extensions,
// and splices against live engine/backend snapshots. The contract under
// fuzz is total and binary — restore() never throws, never partially
// applies, and always lands the target either blank (the fresh-reset
// digest) or exactly on the clean-restore digest. Deterministic seeds,
// so a failure replays.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <utility>

#include "argus/object_engine.hpp"
#include "argus/subject_engine.hpp"
#include "backend/registry.hpp"
#include "crypto/drbg.hpp"
#include "persist/snapshot.hpp"

namespace argus::persist {
namespace {

using backend::AttributeMap;
using backend::Backend;
using backend::Level;
using core::ObjectEngine;
using core::ObjectEngineConfig;
using core::SubjectEngine;
using core::SubjectEngineConfig;

constexpr int kFuzzIters = 300;

Bytes mutate(const Bytes& blob, crypto::HmacDrbg& rng) {
  Bytes out = blob;
  switch (rng.uniform(4)) {
    case 0:  // truncate
      out.resize(static_cast<std::size_t>(rng.uniform(out.size())));
      break;
    case 1: {  // flip 1..4 bits
      const std::uint64_t flips = 1 + rng.uniform(4);
      for (std::uint64_t i = 0; i < flips; ++i) {
        const std::size_t bit =
            static_cast<std::size_t>(rng.uniform(out.size() * 8));
        out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
    }
    case 2: {  // extend with garbage
      const Bytes extra = rng.generate(1 + rng.uniform(64));
      out.insert(out.end(), extra.begin(), extra.end());
      break;
    }
    default: {  // splice: overwrite a window with garbage
      const std::size_t at =
          static_cast<std::size_t>(rng.uniform(out.size()));
      const Bytes junk = rng.generate(1 + rng.uniform(32));
      for (std::size_t i = 0; i < junk.size() && at + i < out.size(); ++i) {
        out[at + i] = junk[i];
      }
      break;
    }
  }
  return out;
}

/// Drive the fuzz loop against any target exposing snapshot/restore/
/// digest through the std::function seams.
void fuzz_target(const Bytes& blob, const Bytes& blank_digest,
                 const Bytes& clean_digest,
                 const std::function<RestoreError(const Bytes&)>& restore,
                 const std::function<Bytes()>& digest, std::uint64_t seed) {
  crypto::HmacDrbg rng = crypto::make_rng(seed, "persist-fuzz");
  int landed_blank = 0;
  for (int i = 0; i < kFuzzIters; ++i) {
    const Bytes bad = mutate(blob, rng);
    RestoreError err = RestoreError::kOk;
    ASSERT_NO_THROW(err = restore(bad)) << "iteration " << i;
    const Bytes d = digest();
    if (err == RestoreError::kOk) {
      // A mutation that happens to survive every integrity check must be
      // a byte-identical blob (e.g. a splice writing the same bytes).
      EXPECT_EQ(d, clean_digest) << "iteration " << i;
    } else {
      EXPECT_EQ(d, blank_digest) << "iteration " << i << " err "
                                 << restore_error_name(err);
      ++landed_blank;
    }
  }
  // The mutator must actually be corrupting: near-every iteration fails.
  EXPECT_GE(landed_blank, kFuzzIters - 1);
  // And the clean blob still restores exactly after all that abuse.
  ASSERT_EQ(restore(blob), RestoreError::kOk);
  EXPECT_EQ(digest(), clean_digest);
}

class PersistFuzzFixture : public ::testing::Test {
 protected:
  PersistFuzzFixture() : be_(crypto::Strength::b128, 4242) {
    alice_ = be_.register_subject(
        "alice", AttributeMap{{"position", "manager"}}, {"support"});
    tv_ = be_.register_object(
        "tv-1", AttributeMap{{"type", "multimedia"}}, Level::kL2, {},
        {{"position=='manager'", "managers", {"play"}}});
  }

  /// A subject/object pair with admission + resumption armed and a few
  /// completed exchanges — rich state in every persisted table.
  std::pair<SubjectEngine, ObjectEngine> live_pair() {
    SubjectEngineConfig scfg;
    scfg.creds = alice_;
    scfg.admin_pub = be_.admin_public_key();
    scfg.seed = 5;
    scfg.resumption.enabled = true;
    SubjectEngine s(std::move(scfg));

    ObjectEngineConfig ocfg;
    ocfg.creds = tv_;
    ocfg.admin_pub = be_.admin_public_key();
    ocfg.seed = 6;
    ocfg.resumption.enabled = true;
    ocfg.admission.enabled = true;
    ObjectEngine o(std::move(ocfg));

    const std::uint64_t now = be_.now();
    for (std::uint64_t i = 0; i < 3; ++i) {
      // Admission buckets refill on the engine's *virtual* clock (the
      // discovery driver feeds it net time); advance it a second per
      // round or the back-to-back exchanges would shed as a burst.
      o.advance_clock(static_cast<double>(i) * 1000.0);
      const Bytes que1 = s.start_round();
      const auto res1 = o.handle(que1, now);
      EXPECT_TRUE(res1);
      const auto que2 = s.handle(*res1, now);
      EXPECT_TRUE(que2);
      const auto res2 = o.handle(*que2, now);
      EXPECT_TRUE(res2);
      EXPECT_EQ(s.handle(*res2, now).status, core::HandleStatus::kOk);
    }
    return {std::move(s), std::move(o)};
  }

  Backend be_;
  backend::SubjectCredentials alice_;
  backend::ObjectCredentials tv_;
};

TEST_F(PersistFuzzFixture, ObjectEngineBlankOrExact) {
  auto [s, o] = live_pair();
  const Bytes blob = o.snapshot();
  // Blank digest: what a failed restore must land on.
  ASSERT_NE(o.restore(Bytes{}), RestoreError::kOk);
  const Bytes blank = o.state_digest();
  ASSERT_EQ(o.restore(blob), RestoreError::kOk);
  const Bytes clean = o.state_digest();
  ASSERT_NE(clean, blank);

  fuzz_target(
      blob, blank, clean, [&](const Bytes& b) { return o.restore(b); },
      [&] { return o.state_digest(); }, 11);
}

TEST_F(PersistFuzzFixture, SubjectEngineBlankOrExact) {
  auto [s, o] = live_pair();
  const Bytes blob = s.snapshot();
  ASSERT_NE(s.restore(Bytes{}), RestoreError::kOk);
  const Bytes blank = s.state_digest();
  ASSERT_EQ(s.restore(blob), RestoreError::kOk);
  const Bytes clean = s.state_digest();
  ASSERT_NE(clean, blank);

  fuzz_target(
      blob, blank, clean, [&](const Bytes& b) { return s.restore(b); },
      [&] { return s.state_digest(); }, 12);
}

TEST_F(PersistFuzzFixture, BackendBlankOrExact) {
  const Bytes blob = be_.snapshot();
  ASSERT_NE(be_.restore(Bytes{}), RestoreError::kOk);
  const Bytes blank = be_.state_digest();
  ASSERT_EQ(be_.restore(blob), RestoreError::kOk);
  const Bytes clean = be_.state_digest();
  ASSERT_NE(clean, blank);

  fuzz_target(
      blob, blank, clean, [&](const Bytes& b) { return be_.restore(b); },
      [&] { return be_.state_digest(); }, 13);
}

TEST_F(PersistFuzzFixture, EveryTruncationLengthLandsBlank) {
  auto [s, o] = live_pair();
  const Bytes blob = o.snapshot();
  ASSERT_NE(o.restore(Bytes{}), RestoreError::kOk);
  const Bytes blank = o.state_digest();

  // Exhaustive prefix sweep (stride keeps it fast; ends exact): every
  // cut point inside the envelope or payload must fail closed.
  for (std::size_t len = 0; len < blob.size();
       len += (len < 64 ? 1 : 17)) {
    const Bytes cut(blob.begin(),
                    blob.begin() + static_cast<std::ptrdiff_t>(len));
    RestoreError err = RestoreError::kOk;
    ASSERT_NO_THROW(err = o.restore(cut)) << "length " << len;
    ASSERT_NE(err, RestoreError::kOk) << "length " << len;
    ASSERT_EQ(o.state_digest(), blank) << "length " << len;
  }
}

}  // namespace
}  // namespace argus::persist
