#include "abe/policy.hpp"

#include <gtest/gtest.h>

namespace argus::abe {
namespace {

TEST(PolicyTest, LeafSatisfaction) {
  const PolicyNode p = PolicyNode::leaf("dept:X");
  EXPECT_TRUE(p.satisfied_by({"dept:X"}));
  EXPECT_TRUE(p.satisfied_by({"dept:X", "role:mgr"}));
  EXPECT_FALSE(p.satisfied_by({"dept:Y"}));
  EXPECT_FALSE(p.satisfied_by({}));
}

TEST(PolicyTest, AndSemantics) {
  const PolicyNode p = PolicyNode::all_of(
      {PolicyNode::leaf("a"), PolicyNode::leaf("b"), PolicyNode::leaf("c")});
  EXPECT_TRUE(p.satisfied_by({"a", "b", "c"}));
  EXPECT_TRUE(p.satisfied_by({"a", "b", "c", "d"}));
  EXPECT_FALSE(p.satisfied_by({"a", "b"}));
  EXPECT_FALSE(p.satisfied_by({}));
}

TEST(PolicyTest, OrSemantics) {
  const PolicyNode p =
      PolicyNode::any_of({PolicyNode::leaf("a"), PolicyNode::leaf("b")});
  EXPECT_TRUE(p.satisfied_by({"a"}));
  EXPECT_TRUE(p.satisfied_by({"b"}));
  EXPECT_TRUE(p.satisfied_by({"a", "b"}));
  EXPECT_FALSE(p.satisfied_by({"c"}));
}

TEST(PolicyTest, ThresholdSemantics) {
  const PolicyNode p = PolicyNode::threshold(
      2, {PolicyNode::leaf("a"), PolicyNode::leaf("b"), PolicyNode::leaf("c")});
  EXPECT_TRUE(p.satisfied_by({"a", "b"}));
  EXPECT_TRUE(p.satisfied_by({"a", "c"}));
  EXPECT_TRUE(p.satisfied_by({"a", "b", "c"}));
  EXPECT_FALSE(p.satisfied_by({"a"}));
  EXPECT_FALSE(p.satisfied_by({"d", "e"}));
}

TEST(PolicyTest, NestedTree) {
  // (dept:X AND (role:mgr OR role:dir))
  const PolicyNode p = PolicyNode::all_of(
      {PolicyNode::leaf("dept:X"),
       PolicyNode::any_of(
           {PolicyNode::leaf("role:mgr"), PolicyNode::leaf("role:dir")})});
  EXPECT_TRUE(p.satisfied_by({"dept:X", "role:mgr"}));
  EXPECT_TRUE(p.satisfied_by({"dept:X", "role:dir"}));
  EXPECT_FALSE(p.satisfied_by({"dept:X"}));
  EXPECT_FALSE(p.satisfied_by({"role:mgr"}));
}

TEST(PolicyTest, LeafCount) {
  EXPECT_EQ(PolicyNode::leaf("a").leaf_count(), 1u);
  EXPECT_EQ(and_of_attributes({"a", "b", "c"}).leaf_count(), 3u);
  const PolicyNode nested = PolicyNode::all_of(
      {PolicyNode::leaf("a"),
       PolicyNode::any_of({PolicyNode::leaf("b"), PolicyNode::leaf("c")})});
  EXPECT_EQ(nested.leaf_count(), 3u);
}

TEST(PolicyTest, Validity) {
  EXPECT_TRUE(PolicyNode::leaf("a").valid());
  EXPECT_FALSE(PolicyNode::leaf("").valid());
  EXPECT_FALSE(PolicyNode::threshold(0, {PolicyNode::leaf("a")}).valid());
  EXPECT_FALSE(PolicyNode::threshold(2, {PolicyNode::leaf("a")}).valid());
  EXPECT_FALSE(PolicyNode::threshold(1, {}).valid());
  EXPECT_TRUE(PolicyNode::threshold(1, {PolicyNode::leaf("a")}).valid());
  // Invalid child invalidates parent.
  EXPECT_FALSE(PolicyNode::all_of({PolicyNode::leaf("")}).valid());
}

TEST(PolicyTest, ToStringReadable) {
  const PolicyNode p =
      PolicyNode::all_of({PolicyNode::leaf("a"), PolicyNode::leaf("b")});
  EXPECT_EQ(p.to_string(), "(2 of (a, b))");
  EXPECT_EQ(PolicyNode::leaf("x").to_string(), "x");
}

TEST(PolicyTest, AndOfAttributesBuilder) {
  const PolicyNode p = and_of_attributes({"a", "b"});
  EXPECT_TRUE(p.valid());
  EXPECT_TRUE(p.satisfied_by({"a", "b"}));
  EXPECT_FALSE(p.satisfied_by({"a"}));
}

}  // namespace
}  // namespace argus::abe
