#include "abe/cpabe.hpp"

#include <gtest/gtest.h>

namespace argus::abe {
namespace {

class CpAbeTest : public ::testing::Test {
 protected:
  CpAbeTest()
      : abe_(pairing::default_system()),
        rng_(crypto::make_rng(99, "cpabe-test")) {
    auto res = abe_.setup(rng_);
    pub_ = res.pub;
    master_ = res.master;
  }

  Fp2 random_gt() {
    return abe_.system().pairing.gt_pow(
        pub_.e_gg_alpha, abe_.system().curve.random_scalar(rng_));
  }

  CpAbe abe_;
  HmacDrbg rng_;
  AbePublicKey pub_;
  AbeMasterKey master_;
};

TEST_F(CpAbeTest, EncryptDecryptSingleAttribute) {
  const Fp2 m = random_gt();
  const auto ct = abe_.encrypt(pub_, m, PolicyNode::leaf("dept:X"), rng_);
  const auto key = abe_.keygen(pub_, master_, {"dept:X"}, rng_);
  const auto out = abe_.decrypt(pub_, key, ct);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST_F(CpAbeTest, UnauthorizedAttributeFails) {
  const Fp2 m = random_gt();
  const auto ct = abe_.encrypt(pub_, m, PolicyNode::leaf("dept:X"), rng_);
  const auto key = abe_.keygen(pub_, master_, {"dept:Y"}, rng_);
  EXPECT_FALSE(abe_.decrypt(pub_, key, ct).has_value());
}

TEST_F(CpAbeTest, AndPolicyRequiresAllAttributes) {
  const Fp2 m = random_gt();
  const auto ct =
      abe_.encrypt(pub_, m, and_of_attributes({"a", "b", "c"}), rng_);
  const auto full = abe_.keygen(pub_, master_, {"a", "b", "c"}, rng_);
  const auto partial = abe_.keygen(pub_, master_, {"a", "b"}, rng_);
  EXPECT_EQ(abe_.decrypt(pub_, full, ct), m);
  EXPECT_FALSE(abe_.decrypt(pub_, partial, ct).has_value());
}

TEST_F(CpAbeTest, OrPolicyAcceptsEitherBranch) {
  const Fp2 m = random_gt();
  const auto policy =
      PolicyNode::any_of({PolicyNode::leaf("a"), PolicyNode::leaf("b")});
  const auto ct = abe_.encrypt(pub_, m, policy, rng_);
  EXPECT_EQ(abe_.decrypt(pub_, abe_.keygen(pub_, master_, {"a"}, rng_), ct),
            m);
  EXPECT_EQ(abe_.decrypt(pub_, abe_.keygen(pub_, master_, {"b"}, rng_), ct),
            m);
  EXPECT_FALSE(
      abe_.decrypt(pub_, abe_.keygen(pub_, master_, {"c"}, rng_), ct)
          .has_value());
}

TEST_F(CpAbeTest, ThresholdPolicy) {
  const Fp2 m = random_gt();
  const auto policy = PolicyNode::threshold(
      2, {PolicyNode::leaf("a"), PolicyNode::leaf("b"), PolicyNode::leaf("c")});
  const auto ct = abe_.encrypt(pub_, m, policy, rng_);
  EXPECT_EQ(abe_.decrypt(pub_, abe_.keygen(pub_, master_, {"a", "c"}, rng_),
                         ct),
            m);
  EXPECT_EQ(abe_.decrypt(pub_, abe_.keygen(pub_, master_, {"b", "c"}, rng_),
                         ct),
            m);
  EXPECT_FALSE(
      abe_.decrypt(pub_, abe_.keygen(pub_, master_, {"c"}, rng_), ct)
          .has_value());
}

TEST_F(CpAbeTest, NestedPolicy) {
  // dept:X AND (role:mgr OR role:dir)
  const Fp2 m = random_gt();
  const auto policy = PolicyNode::all_of(
      {PolicyNode::leaf("dept:X"),
       PolicyNode::any_of(
           {PolicyNode::leaf("role:mgr"), PolicyNode::leaf("role:dir")})});
  const auto ct = abe_.encrypt(pub_, m, policy, rng_);
  EXPECT_EQ(abe_.decrypt(
                pub_, abe_.keygen(pub_, master_, {"dept:X", "role:dir"}, rng_),
                ct),
            m);
  EXPECT_FALSE(
      abe_.decrypt(pub_,
                   abe_.keygen(pub_, master_, {"role:mgr", "role:dir"}, rng_),
                   ct)
          .has_value());
}

TEST_F(CpAbeTest, CollusionResistance) {
  // Alice has "a", Bob has "b"; pooling their key components must not
  // decrypt an (a AND b) ciphertext — different blinding t per key.
  const Fp2 m = random_gt();
  const auto ct = abe_.encrypt(pub_, m, and_of_attributes({"a", "b"}), rng_);
  const auto alice = abe_.keygen(pub_, master_, {"a"}, rng_);
  const auto bob = abe_.keygen(pub_, master_, {"b"}, rng_);

  AbeUserKey frankenkey = alice;  // Alice's D, Bob's "b" component grafted in
  frankenkey.components.insert(*bob.components.find("b"));
  const auto out = abe_.decrypt(pub_, frankenkey, ct);
  // The recombination "succeeds" structurally but must yield a wrong value.
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(*out, m);
}

TEST_F(CpAbeTest, DistinctCiphertextsPerEncryption) {
  const Fp2 m = random_gt();
  const auto p = PolicyNode::leaf("a");
  const auto ct1 = abe_.encrypt(pub_, m, p, rng_);
  const auto ct2 = abe_.encrypt(pub_, m, p, rng_);
  EXPECT_NE(ct1.c, ct2.c);  // fresh s per encryption
}

TEST_F(CpAbeTest, InvalidPolicyThrows) {
  EXPECT_THROW(
      abe_.encrypt(pub_, random_gt(), PolicyNode::threshold(3, {}), rng_),
      std::invalid_argument);
}

TEST_F(CpAbeTest, KemRoundTrip) {
  const auto policy = and_of_attributes({"dept:X", "role:mgr"});
  const auto enc = abe_.encapsulate(pub_, policy, rng_);
  EXPECT_EQ(enc.key.size(), 32u);
  const auto key = abe_.keygen(pub_, master_, {"dept:X", "role:mgr"}, rng_);
  const auto dec = abe_.decapsulate(pub_, key, enc.ct);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, enc.key);
  const auto outsider = abe_.keygen(pub_, master_, {"dept:Y"}, rng_);
  EXPECT_FALSE(abe_.decapsulate(pub_, outsider, enc.ct).has_value());
}

TEST_F(CpAbeTest, LeafCountDrivesCiphertextSize) {
  // Fig 6(c) structure: one leaf share pair per policy attribute.
  for (std::size_t n : {1u, 3u, 5u}) {
    std::vector<std::string> attrs;
    for (std::size_t i = 0; i < n; ++i) attrs.push_back("attr" + std::to_string(i));
    const auto ct =
        abe_.encrypt(pub_, random_gt(), and_of_attributes(attrs), rng_);
    EXPECT_EQ(ct.leaves.size(), n);
  }
}

}  // namespace
}  // namespace argus::abe
