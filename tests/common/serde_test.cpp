#include "common/serde.hpp"

#include <gtest/gtest.h>

namespace argus {
namespace {

TEST(SerdeTest, IntegersRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.done());
}

TEST(SerdeTest, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.data(), (Bytes{0x01, 0x02}));
}

TEST(SerdeTest, LengthPrefixedBytes) {
  ByteWriter w;
  w.bytes16(Bytes{1, 2, 3});
  w.bytes32(Bytes{4, 5});
  w.str("hi");

  ByteReader r(w.data());
  EXPECT_EQ(r.bytes16(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.bytes32(), (Bytes{4, 5}));
  EXPECT_EQ(r.str(), "hi");
  r.expect_done();
}

TEST(SerdeTest, EmptyBytes) {
  ByteWriter w;
  w.bytes16({});
  ByteReader r(w.data());
  EXPECT_TRUE(r.bytes16().empty());
}

TEST(SerdeTest, TruncatedThrows) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.data());
  r.u16();
  EXPECT_THROW(r.u32(), SerdeError);
}

TEST(SerdeTest, TruncatedLengthPrefixThrows) {
  Bytes data = {0x00, 0x05, 'a', 'b'};  // claims 5 bytes, has 2
  ByteReader r(data);
  EXPECT_THROW(r.bytes16(), SerdeError);
}

TEST(SerdeTest, TrailingBytesDetected) {
  Bytes data = {0x01, 0x02};
  ByteReader r(data);
  r.u8();
  EXPECT_THROW(r.expect_done(), SerdeError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(SerdeTest, RawReads) {
  Bytes data = {9, 8, 7};
  ByteReader r(data);
  EXPECT_EQ(r.raw(2), (Bytes{9, 8}));
  EXPECT_EQ(r.remaining(), 1u);
}

}  // namespace
}  // namespace argus
