#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace argus {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "0001abff10");
  EXPECT_EQ(from_hex("0001abff10"), data);
  EXPECT_EQ(from_hex("0001ABFF10"), data);
}

TEST(BytesTest, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, HexRejectsBadDigit) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(BytesTest, StrBytes) {
  EXPECT_EQ(str_bytes("ab"), (Bytes{'a', 'b'}));
  EXPECT_TRUE(str_bytes("").empty());
}

TEST(BytesTest, CtEqual) {
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2}));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(BytesTest, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes c = {};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
  EXPECT_TRUE(concat({}).empty());
}

TEST(BytesTest, Append) {
  Bytes a = {1};
  append(a, Bytes{2, 3});
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
}

TEST(BytesTest, SecureWipe) {
  Bytes a = {1, 2, 3};
  secure_wipe(a);
  EXPECT_TRUE(a.empty());
}

TEST(BytesTest, XorBytes) {
  EXPECT_EQ(xor_bytes(Bytes{0xF0, 0x0F}, Bytes{0xFF, 0xFF}),
            (Bytes{0x0F, 0xF0}));
  EXPECT_THROW(xor_bytes(Bytes{1}, Bytes{1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace argus
