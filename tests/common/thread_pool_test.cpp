#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace argus {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace argus
