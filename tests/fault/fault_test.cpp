// Unit tests for the chaos layer: FaultPlan expansion, the Byzantine
// mutator, and the ChaosScheduler timeline — all against a bare
// Simulator with stub hooks, no protocol stack involved.
#include <gtest/gtest.h>

#include <vector>

#include "fault/byzantine.hpp"
#include "fault/chaos.hpp"
#include "fault/plan.hpp"
#include "net/sim.hpp"

namespace argus::fault {
namespace {

bool same_event(const FaultEvent& a, const FaultEvent& b) {
  return a.object == b.object && a.kind == b.kind && a.at_ms == b.at_ms &&
         a.duration_ms == b.duration_ms && a.factor == b.factor &&
         a.mode == b.mode && a.seed == b.seed;
}

TEST(FaultPlan, DefaultPlanIsUnarmedAndExpandsToNothing) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.armed());
  EXPECT_TRUE(expand_plan(plan, 16).empty());
}

TEST(FaultPlan, AnyRateOrScriptArms) {
  FaultPlan plan;
  plan.crash_rate = 0.01;
  EXPECT_TRUE(plan.armed());
  plan.crash_rate = 0.0;
  EXPECT_FALSE(plan.armed());
  plan.scripted.push_back(FaultEvent{});
  EXPECT_TRUE(plan.armed());
}

TEST(FaultPlan, ScriptedEventsOutOfRangeAreFiltered) {
  FaultPlan plan;
  FaultEvent ev;
  ev.object = 2;
  ev.kind = FaultKind::kZombie;
  ev.at_ms = 7;
  plan.scripted.push_back(ev);
  ev.object = 9;  // out of range for a 3-object fleet
  plan.scripted.push_back(ev);
  const auto timeline = expand_plan(plan, 3);
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0].object, 2u);
  EXPECT_EQ(timeline[0].kind, FaultKind::kZombie);
}

TEST(FaultPlan, ExpansionIsDeterministic) {
  FaultPlan plan;
  plan.crash_rate = 0.4;
  plan.straggle_rate = 0.3;
  plan.zombie_rate = 0.2;
  plan.byzantine_rate = 0.2;
  plan.seed = 99;
  const auto a = expand_plan(plan, 20);
  const auto b = expand_plan(plan, 20);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_event(a[i], b[i])) << "event " << i;
  }
}

TEST(FaultPlan, RateOneCrashesEveryObject) {
  FaultPlan plan;
  plan.crash_rate = 1.0;
  plan.reboot_after_ms = 450;
  plan.horizon_ms = 600;
  const std::size_t n = 12;
  const auto timeline = expand_plan(plan, n);
  ASSERT_EQ(timeline.size(), n);
  std::vector<bool> hit(n, false);
  for (const FaultEvent& ev : timeline) {
    EXPECT_EQ(ev.kind, FaultKind::kCrash);
    EXPECT_GE(ev.at_ms, 0.0);
    EXPECT_LT(ev.at_ms, plan.horizon_ms);
    EXPECT_EQ(ev.duration_ms, 450);
    hit[ev.object] = true;
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(hit[i]) << "object " << i;
}

TEST(FaultPlan, TimelineIsSortedByTimeObjectKind) {
  FaultPlan plan;
  plan.crash_rate = 0.5;
  plan.zombie_rate = 0.5;
  plan.byzantine_rate = 0.5;
  plan.seed = 7;
  const auto timeline = expand_plan(plan, 30);
  ASSERT_GT(timeline.size(), 1u);
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    const FaultEvent& a = timeline[i - 1];
    const FaultEvent& b = timeline[i];
    const bool ordered =
        a.at_ms < b.at_ms ||
        (a.at_ms == b.at_ms &&
         (a.object < b.object ||
          (a.object == b.object &&
           static_cast<int>(a.kind) <= static_cast<int>(b.kind))));
    EXPECT_TRUE(ordered) << "events " << i - 1 << " and " << i;
  }
}

TEST(FaultPlan, PerObjectStreamsAreIndependentOfFleetSize) {
  // Object i's draws come from a stream keyed by (seed, i), so growing
  // the fleet must not perturb the faults of the objects already in it.
  FaultPlan plan;
  plan.crash_rate = 0.5;
  plan.zombie_rate = 0.5;
  plan.seed = 5;
  const auto small = expand_plan(plan, 5);
  auto large = expand_plan(plan, 10);
  std::erase_if(large, [](const FaultEvent& ev) { return ev.object >= 5; });
  ASSERT_EQ(small.size(), large.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_TRUE(same_event(small[i], large[i])) << "event " << i;
  }
}

TEST(FaultPlan, ByzantineEventsCarryDistinctSeeds) {
  FaultPlan plan;
  plan.byzantine_rate = 1.0;
  plan.byzantine_mode = ByzantineMode::kBitFlip;
  const auto timeline = expand_plan(plan, 4);
  ASSERT_EQ(timeline.size(), 4u);
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline[i].mode, ByzantineMode::kBitFlip);
    for (std::size_t j = i + 1; j < timeline.size(); ++j) {
      EXPECT_NE(timeline[i].seed, timeline[j].seed);
    }
  }
}

Bytes test_wire(std::size_t n) {
  Bytes wire(n);
  for (std::size_t i = 0; i < n; ++i) {
    wire[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  return wire;
}

TEST(ByzantineMutator, UnarmedIsIdentity) {
  ByzantineMutator mut;
  const Bytes wire = test_wire(48);
  EXPECT_EQ(mut.mutate(wire), wire);
  EXPECT_EQ(mut.mutations(), 0u);
}

TEST(ByzantineMutator, TruncateYieldsStrictPrefix) {
  ByzantineMutator mut;
  mut.arm(ByzantineMode::kTruncate, 3);
  const Bytes wire = test_wire(64);
  for (int i = 0; i < 16; ++i) {
    const Bytes out = mut.mutate(wire);
    ASSERT_LT(out.size(), wire.size());
    EXPECT_TRUE(std::equal(out.begin(), out.end(), wire.begin()));
  }
  EXPECT_EQ(mut.mutations(), 16u);
}

TEST(ByzantineMutator, BitFlipChangesExactlyOneBit) {
  ByzantineMutator mut;
  mut.arm(ByzantineMode::kBitFlip, 4);
  const Bytes wire = test_wire(64);
  for (int i = 0; i < 16; ++i) {
    const Bytes out = mut.mutate(wire);
    ASSERT_EQ(out.size(), wire.size());
    int flipped = 0;
    for (std::size_t j = 0; j < wire.size(); ++j) {
      std::uint8_t diff = wire[j] ^ out[j];
      while (diff) {
        flipped += diff & 1;
        diff >>= 1;
      }
    }
    EXPECT_EQ(flipped, 1);
  }
}

TEST(ByzantineMutator, ReplaySendsThePreviousReply) {
  ByzantineMutator mut;
  mut.arm(ByzantineMode::kReplay, 5);
  const Bytes first = test_wire(16);
  const Bytes second = test_wire(24);
  const Bytes third = test_wire(32);
  // The first reply has nothing to replay, so it primes the buffer.
  EXPECT_EQ(mut.mutate(first), first);
  EXPECT_EQ(mut.mutate(second), first);
  EXPECT_EQ(mut.mutate(third), second);
}

TEST(ByzantineMutator, SameSeedSameCorruption) {
  ByzantineMutator a;
  ByzantineMutator b;
  a.arm(ByzantineMode::kMixed, 11);
  b.arm(ByzantineMode::kMixed, 11);
  for (int i = 0; i < 12; ++i) {
    const Bytes wire = test_wire(40 + static_cast<std::size_t>(i));
    EXPECT_EQ(a.mutate(wire), b.mutate(wire)) << "reply " << i;
  }
}

struct HookLog {
  struct Entry {
    const char* what;
    std::size_t object;
    double at;
  };
  std::vector<Entry> entries;
};

ChaosHooks logging_hooks(net::Simulator& sim, HookLog& log) {
  ChaosHooks hooks;
  hooks.crash = [&](std::size_t i) {
    log.entries.push_back({"crash", i, sim.now()});
  };
  hooks.reboot = [&](std::size_t i) {
    log.entries.push_back({"reboot", i, sim.now()});
  };
  hooks.straggle_begin = [&](std::size_t i, double factor) {
    log.entries.push_back({"straggle_begin", i, sim.now()});
    EXPECT_EQ(factor, 6.0);
  };
  hooks.straggle_end = [&](std::size_t i) {
    log.entries.push_back({"straggle_end", i, sim.now()});
  };
  hooks.zombie = [&](std::size_t i) {
    log.entries.push_back({"zombie", i, sim.now()});
  };
  hooks.byzantine = [&](std::size_t i, ByzantineMode mode, std::uint64_t) {
    log.entries.push_back({"byzantine", i, sim.now()});
    EXPECT_EQ(mode, ByzantineMode::kTruncate);
  };
  return hooks;
}

TEST(ChaosScheduler, FiresScriptedTimelineAtTheRightTimes) {
  net::Simulator sim;
  HookLog log;
  ChaosScheduler chaos(sim, logging_hooks(sim, log));

  FaultPlan plan;
  FaultEvent crash;
  crash.object = 0;
  crash.kind = FaultKind::kCrash;
  crash.at_ms = 5;
  crash.duration_ms = 10;  // reboot at 15
  plan.scripted.push_back(crash);
  FaultEvent straggle;
  straggle.object = 1;
  straggle.kind = FaultKind::kStraggle;
  straggle.at_ms = 2;
  straggle.duration_ms = 6;  // window ends at 8
  straggle.factor = 6.0;
  plan.scripted.push_back(straggle);
  FaultEvent zombie;
  zombie.object = 2;
  zombie.kind = FaultKind::kZombie;
  zombie.at_ms = 3;
  plan.scripted.push_back(zombie);
  FaultEvent byz;
  byz.object = 3;
  byz.kind = FaultKind::kByzantine;
  byz.at_ms = 4;
  byz.mode = ByzantineMode::kTruncate;
  plan.scripted.push_back(byz);

  chaos.arm(plan, 4);
  sim.run();

  ASSERT_EQ(log.entries.size(), 6u);
  EXPECT_STREQ(log.entries[0].what, "straggle_begin");
  EXPECT_EQ(log.entries[0].at, 2);
  EXPECT_STREQ(log.entries[1].what, "zombie");
  EXPECT_EQ(log.entries[1].at, 3);
  EXPECT_STREQ(log.entries[2].what, "byzantine");
  EXPECT_EQ(log.entries[2].at, 4);
  EXPECT_STREQ(log.entries[3].what, "crash");
  EXPECT_EQ(log.entries[3].at, 5);
  EXPECT_STREQ(log.entries[4].what, "straggle_end");
  EXPECT_EQ(log.entries[4].at, 8);
  EXPECT_STREQ(log.entries[5].what, "reboot");
  EXPECT_EQ(log.entries[5].at, 15);

  EXPECT_EQ(chaos.stats().crashes, 1u);
  EXPECT_EQ(chaos.stats().reboots, 1u);
  EXPECT_EQ(chaos.stats().straggles, 1u);
  EXPECT_EQ(chaos.stats().zombies, 1u);
  EXPECT_EQ(chaos.stats().byzantines, 1u);
}

TEST(ChaosScheduler, EverReflectsTheArmedTimeline) {
  net::Simulator sim;
  ChaosScheduler chaos(sim, ChaosHooks{});
  FaultPlan plan;
  FaultEvent ev;
  ev.object = 1;
  ev.kind = FaultKind::kZombie;
  plan.scripted.push_back(ev);
  chaos.arm(plan, 3);
  EXPECT_TRUE(chaos.ever(1, FaultKind::kZombie));
  EXPECT_FALSE(chaos.ever(1, FaultKind::kCrash));
  EXPECT_FALSE(chaos.ever(0, FaultKind::kZombie));
}

TEST(ChaosScheduler, PastOnsetsFireImmediately) {
  net::Simulator sim;
  sim.schedule(10, [] {});
  sim.run();
  ASSERT_EQ(sim.now(), 10);

  HookLog log;
  ChaosScheduler chaos(sim, logging_hooks(sim, log));
  FaultPlan plan;
  FaultEvent ev;
  ev.object = 0;
  ev.kind = FaultKind::kCrash;
  ev.at_ms = 3;  // already in the past
  plan.scripted.push_back(ev);
  chaos.arm(plan, 1);
  sim.run();
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_STREQ(log.entries[0].what, "crash");
  EXPECT_EQ(log.entries[0].at, 10);  // clamped to "now", not the past
}

TEST(ChaosScheduler, CrashWithoutDurationNeverReboots) {
  net::Simulator sim;
  HookLog log;
  ChaosScheduler chaos(sim, logging_hooks(sim, log));
  FaultPlan plan;
  FaultEvent ev;
  ev.object = 0;
  ev.kind = FaultKind::kCrash;
  ev.at_ms = 1;
  ev.duration_ms = -1;
  plan.scripted.push_back(ev);
  chaos.arm(plan, 1);
  sim.run();
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_STREQ(log.entries[0].what, "crash");
  EXPECT_EQ(chaos.stats().reboots, 0u);
}

}  // namespace
}  // namespace argus::fault
