#include "crypto/ec.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/primes.hpp"

namespace argus::crypto {
namespace {

class EcGroupTest : public ::testing::TestWithParam<Strength> {
 protected:
  const EcGroup& g() const { return group_for(GetParam()); }
};

TEST_P(EcGroupTest, CurveConstantsAreConsistent) {
  // Validate the hard-coded parameters instead of trusting transcription:
  // p and n prime, G on curve, n*G = identity.
  HmacDrbg rng(str_bytes("param-check"));
  EXPECT_TRUE(is_probable_prime(g().params().p, rng, 8));
  EXPECT_TRUE(is_probable_prime(g().params().n, rng, 8));
  EXPECT_TRUE(g().on_curve(g().generator()));
  EXPECT_TRUE(g().scalar_mul_base(g().params().n).infinity);
}

TEST_P(EcGroupTest, GeneratorSmallMultiples) {
  const EcPoint g1 = g().generator();
  const EcPoint g2 = g().dbl(g1);
  const EcPoint g3 = g().add(g2, g1);
  EXPECT_TRUE(g().on_curve(g2));
  EXPECT_TRUE(g().on_curve(g3));
  EXPECT_EQ(g().scalar_mul_base(UInt::from_u64(2)), g2);
  EXPECT_EQ(g().scalar_mul_base(UInt::from_u64(3)), g3);
  // 3G == 2G + G == G + 2G
  EXPECT_EQ(g().add(g1, g2), g3);
}

TEST_P(EcGroupTest, AdditionProperties) {
  HmacDrbg rng(str_bytes("ec-props"));
  const UInt a = g().random_scalar(rng);
  const UInt b = g().random_scalar(rng);
  const EcPoint pa = g().scalar_mul_base(a);
  const EcPoint pb = g().scalar_mul_base(b);
  // Commutativity.
  EXPECT_EQ(g().add(pa, pb), g().add(pb, pa));
  // Identity.
  EXPECT_EQ(g().add(pa, EcPoint::identity()), pa);
  EXPECT_EQ(g().add(EcPoint::identity(), pb), pb);
  // Inverse.
  EXPECT_TRUE(g().add(pa, g().negate(pa)).infinity);
  // (a+b)G == aG + bG.
  const UInt sum = addmod(a, b, g().params().n);
  EXPECT_EQ(g().scalar_mul_base(sum), g().add(pa, pb));
}

TEST_P(EcGroupTest, ScalarMulDistributes) {
  HmacDrbg rng(str_bytes("ec-dist"));
  const UInt a = g().random_scalar(rng);
  const UInt b = g().random_scalar(rng);
  const EcPoint pb = g().scalar_mul_base(b);
  // a*(b*G) == (a*b mod n)*G.
  const MontCtx& fn = g().order();
  const UInt ab =
      fn.from_mont(fn.mul(fn.to_mont(a), fn.to_mont(b)));
  EXPECT_EQ(g().scalar_mul(pb, a), g().scalar_mul_base(ab));
}

TEST_P(EcGroupTest, ScalarMulEdgeCases) {
  EXPECT_TRUE(g().scalar_mul_base(UInt::zero()).infinity);
  EXPECT_EQ(g().scalar_mul_base(UInt::one()), g().generator());
  // (n-1)*G == -G.
  const UInt nm1 = sub(g().params().n, UInt::one());
  EXPECT_EQ(g().scalar_mul_base(nm1), g().negate(g().generator()));
  // k and k+n give the same point (reduction mod n).
  const UInt k = UInt::from_u64(12345);
  EXPECT_EQ(g().scalar_mul_base(add(k, g().params().n)),
            g().scalar_mul_base(k));
}

TEST_P(EcGroupTest, PointCodecRoundTrip) {
  HmacDrbg rng(str_bytes("ec-codec"));
  const EcPoint p = g().scalar_mul_base(g().random_scalar(rng));
  const Bytes enc = g().encode_point(p);
  EXPECT_EQ(enc.size(), 1 + 2 * g().params().field_bytes);
  EXPECT_EQ(enc[0], 0x04);
  const auto dec = g().decode_point(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, p);
}

TEST_P(EcGroupTest, DecodeRejectsInvalid) {
  HmacDrbg rng(str_bytes("ec-bad"));
  const EcPoint p = g().scalar_mul_base(g().random_scalar(rng));
  Bytes enc = g().encode_point(p);
  enc.back() ^= 1;  // off-curve Y
  EXPECT_FALSE(g().decode_point(enc).has_value());
  EXPECT_FALSE(g().decode_point(Bytes{0x04, 0x01}).has_value());
  EXPECT_FALSE(g().decode_point({}).has_value());
  // Identity encoding round-trips.
  EXPECT_TRUE(g().decode_point(g().encode_point(EcPoint::identity()))
                  ->infinity);
}

TEST_P(EcGroupTest, RandomScalarInRange) {
  HmacDrbg rng(str_bytes("ec-scalar"));
  for (int i = 0; i < 10; ++i) {
    const UInt k = g().random_scalar(rng);
    EXPECT_FALSE(k.is_zero());
    EXPECT_LT(cmp(k, g().params().n), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrengths, EcGroupTest,
                         ::testing::Values(Strength::b112, Strength::b128,
                                           Strength::b192, Strength::b256),
                         [](const auto& info) {
                           return std::string("S") +
                                  std::to_string(strength_bits(info.param));
                         });

TEST(EcCurveTest, StrengthMapping) {
  EXPECT_EQ(curve_for(Strength::b112).name, "P-224");
  EXPECT_EQ(curve_for(Strength::b128).name, "P-256");
  EXPECT_EQ(curve_for(Strength::b192).name, "P-384");
  EXPECT_EQ(curve_for(Strength::b256).name, "P-521");
  EXPECT_EQ(strength_bits(Strength::b192), 192);
}

TEST(EcCurveTest, FieldSizes) {
  EXPECT_EQ(curve_p224().field_bytes, 28u);
  EXPECT_EQ(curve_p256().field_bytes, 32u);
  EXPECT_EQ(curve_p384().field_bytes, 48u);
  EXPECT_EQ(curve_p521().field_bytes, 66u);
}

}  // namespace
}  // namespace argus::crypto
