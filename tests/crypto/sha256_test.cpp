#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

namespace argus::crypto {
namespace {

// FIPS 180-4 / NIST known-answer vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(str_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(str_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes msg = str_bytes("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  // Split at awkward boundaries.
  h.update(ByteSpan(msg).first(1));
  h.update(ByteSpan(msg).subspan(1, 7));
  h.update(ByteSpan(msg).subspan(8));
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(Sha256Test, ResetReuses) {
  Sha256 h;
  h.update(str_bytes("abc"));
  (void)h.finish();
  h.reset();
  h.update(str_bytes("abc"));
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, BlockBoundaryLengths) {
  // Hash every length around the 64-byte block boundary; verify
  // incremental == one-shot for each (padding edge cases).
  for (std::size_t len = 55; len <= 130; ++len) {
    Bytes msg(len, 0x5a);
    Sha256 h;
    for (std::size_t i = 0; i < len; ++i) {
      h.update(ByteSpan(&msg[i], 1));
    }
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash(str_bytes("a")), Sha256::hash(str_bytes("b")));
}

}  // namespace
}  // namespace argus::crypto
