#include "crypto/ecdsa.hpp"

#include <gtest/gtest.h>

#include "crypto/ecdh.hpp"

namespace argus::crypto {
namespace {

class EcdsaTest : public ::testing::TestWithParam<Strength> {
 protected:
  const EcGroup& g() const { return group_for(GetParam()); }
};

TEST_P(EcdsaTest, SignVerifyRoundTrip) {
  HmacDrbg rng(str_bytes("ecdsa"));
  const EcKeyPair kp = ec_generate(g(), rng);
  const Bytes msg = str_bytes("QUE2 transcript");
  const EcdsaSignature sig = ecdsa_sign(g(), kp.priv, msg);
  EXPECT_TRUE(ecdsa_verify(g(), kp.pub, msg, sig));
}

TEST_P(EcdsaTest, RejectsTamperedMessage) {
  HmacDrbg rng(str_bytes("ecdsa2"));
  const EcKeyPair kp = ec_generate(g(), rng);
  const EcdsaSignature sig = ecdsa_sign(g(), kp.priv, str_bytes("hello"));
  EXPECT_FALSE(ecdsa_verify(g(), kp.pub, str_bytes("hellp"), sig));
}

TEST_P(EcdsaTest, RejectsWrongKey) {
  HmacDrbg rng(str_bytes("ecdsa3"));
  const EcKeyPair kp1 = ec_generate(g(), rng);
  const EcKeyPair kp2 = ec_generate(g(), rng);
  const Bytes msg = str_bytes("msg");
  const EcdsaSignature sig = ecdsa_sign(g(), kp1.priv, msg);
  EXPECT_FALSE(ecdsa_verify(g(), kp2.pub, msg, sig));
}

TEST_P(EcdsaTest, RejectsTamperedSignature) {
  HmacDrbg rng(str_bytes("ecdsa4"));
  const EcKeyPair kp = ec_generate(g(), rng);
  const Bytes msg = str_bytes("msg");
  EcdsaSignature sig = ecdsa_sign(g(), kp.priv, msg);
  sig.r = addmod(sig.r, UInt::one(), g().params().n);
  EXPECT_FALSE(ecdsa_verify(g(), kp.pub, msg, sig));
}

TEST_P(EcdsaTest, RejectsZeroComponents) {
  HmacDrbg rng(str_bytes("ecdsa5"));
  const EcKeyPair kp = ec_generate(g(), rng);
  EXPECT_FALSE(ecdsa_verify(g(), kp.pub, str_bytes("m"),
                            EcdsaSignature{UInt::zero(), UInt::one()}));
  EXPECT_FALSE(ecdsa_verify(g(), kp.pub, str_bytes("m"),
                            EcdsaSignature{UInt::one(), UInt::zero()}));
  EXPECT_FALSE(ecdsa_verify(g(), kp.pub, str_bytes("m"),
                            EcdsaSignature{g().params().n, UInt::one()}));
}

TEST_P(EcdsaTest, DeterministicNonces) {
  // RFC 6979: the same key and message always produce the same signature.
  HmacDrbg rng(str_bytes("ecdsa6"));
  const EcKeyPair kp = ec_generate(g(), rng);
  const Bytes msg = str_bytes("deterministic");
  const EcdsaSignature s1 = ecdsa_sign(g(), kp.priv, msg);
  const EcdsaSignature s2 = ecdsa_sign(g(), kp.priv, msg);
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
  // ... and different messages produce different nonces (r differs).
  const EcdsaSignature s3 = ecdsa_sign(g(), kp.priv, str_bytes("other"));
  EXPECT_NE(s1.r, s3.r);
}

TEST_P(EcdsaTest, SignatureCodec) {
  HmacDrbg rng(str_bytes("ecdsa7"));
  const EcKeyPair kp = ec_generate(g(), rng);
  const Bytes msg = str_bytes("codec");
  const EcdsaSignature sig = ecdsa_sign(g(), kp.priv, msg);
  const Bytes wire = sig.to_bytes(g());
  const std::size_t order_bytes = (g().params().n.bit_length() + 7) / 8;
  EXPECT_EQ(wire.size(), 2 * order_bytes);
  const auto parsed = EcdsaSignature::from_bytes(g(), wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(ecdsa_verify(g(), kp.pub, msg, *parsed));
  EXPECT_FALSE(
      EcdsaSignature::from_bytes(g(), ByteSpan(wire).first(5)).has_value());
}

TEST_P(EcdsaTest, EcdhAgreement) {
  HmacDrbg rng(str_bytes("ecdh"));
  const EcKeyPair alice = ecdh_generate(g(), rng);
  const EcKeyPair bob = ecdh_generate(g(), rng);
  const Bytes s1 = ecdh_shared_secret(g(), alice.priv, bob.pub);
  const Bytes s2 = ecdh_shared_secret(g(), bob.priv, alice.pub);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), g().params().field_bytes);
}

TEST_P(EcdsaTest, EcdhDistinctPairsDistinctSecrets) {
  HmacDrbg rng(str_bytes("ecdh2"));
  const EcKeyPair a = ecdh_generate(g(), rng);
  const EcKeyPair b = ecdh_generate(g(), rng);
  const EcKeyPair c = ecdh_generate(g(), rng);
  EXPECT_NE(ecdh_shared_secret(g(), a.priv, b.pub),
            ecdh_shared_secret(g(), a.priv, c.pub));
}

TEST_P(EcdsaTest, EcdhRejectsInvalidPeer) {
  HmacDrbg rng(str_bytes("ecdh3"));
  const EcKeyPair a = ecdh_generate(g(), rng);
  EXPECT_THROW(ecdh_shared_secret(g(), a.priv, EcPoint::identity()),
               std::invalid_argument);
  EcPoint bogus = a.pub;
  bogus.y = addmod(bogus.y, UInt::one(), g().params().p);
  EXPECT_THROW(ecdh_shared_secret(g(), a.priv, bogus), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllStrengths, EcdsaTest,
                         ::testing::Values(Strength::b112, Strength::b128,
                                           Strength::b192, Strength::b256),
                         [](const auto& info) {
                           return std::string("S") +
                                  std::to_string(strength_bits(info.param));
                         });

TEST(EcdsaSizeTest, Paper128BitSizes) {
  // §IX-A: at 128-bit strength KEXM and SIG are 64 B.
  const EcGroup& g = group_for(Strength::b128);
  HmacDrbg rng(str_bytes("sizes"));
  const EcKeyPair kp = ec_generate(g, rng);
  EXPECT_EQ(ecdsa_sign(g, kp.priv, str_bytes("m")).to_bytes(g).size(), 64u);
}

}  // namespace
}  // namespace argus::crypto
