#include "crypto/aes.hpp"

#include <gtest/gtest.h>

namespace argus::crypto {
namespace {

// FIPS 197 Appendix C known-answer vectors.
TEST(AesTest, Fips197Aes128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ByteSpan(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(ByteSpan(back, 16)), to_hex(pt));
}

TEST(AesTest, Fips197Aes192) {
  const Bytes key =
      from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ByteSpan(ct, 16)), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(AesTest, Fips197Aes256) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ByteSpan(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(ByteSpan(back, 16)), to_hex(pt));
}

TEST(AesTest, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(33, 0)), std::invalid_argument);
}

// NIST SP 800-38A (CAVP) CBC known-answer vectors: four chained blocks,
// exercising the IV feed-forward across block boundaries in both
// directions. Shared plaintext for the F.2.* examples.
const char* const kSp800_38aPt =
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710";
const char* const kSp800_38aIv = "000102030405060708090a0b0c0d0e0f";

struct CbcKat {
  const char* key;
  const char* ct;  // ciphertext of the four PT blocks (no padding block)
};

// F.2.1/F.2.2 (AES-128) and F.2.5/F.2.6 (AES-256).
const CbcKat kCbcKats[] = {
    {"2b7e151628aed2a6abf7158809cf4f3c",
     "7649abac8119b246cee98e9b12e9197d"
     "5086cb9b507219ee95db113a917678b2"
     "73bed6b8e3c1743b7116e69e22229516"
     "3ff1caa1681fac09120eca307586e1a7"},
    {"603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
     "f58c4c04d6e5f1ba779eabfb5f7bfbd6"
     "9cfc4e967edb808d679f777bc6702c7d"
     "39f23369a9d9bacfa530e26304231461"
     "b2eb05e2c39be9fcda6c19078c6a9d1b"},
};

TEST(AesCbcTest, Sp800_38aMultiBlockEncrypt) {
  const Bytes pt = from_hex(kSp800_38aPt);
  const Bytes iv = from_hex(kSp800_38aIv);
  for (const CbcKat& kat : kCbcKats) {
    const Bytes key = from_hex(kat.key);
    // Our CBC always PKCS#7-pads, so the standard's ciphertext is the
    // 64-byte prefix and one extra padding block follows.
    const Bytes ct = aes_cbc_encrypt(key, iv, pt);
    ASSERT_EQ(ct.size(), pt.size() + 16);
    EXPECT_EQ(to_hex(ByteSpan(ct).first(pt.size())), kat.ct);
    EXPECT_EQ(aes_cbc_decrypt(key, iv, ct), pt);
  }
}

TEST(AesCbcTest, Sp800_38aBlockChaining) {
  // Drive the chaining by hand through the raw block cipher: each
  // ciphertext block must depend on the previous one exactly as the
  // standard's intermediate values say, and the inverse must unwind it.
  const Bytes pt = from_hex(kSp800_38aPt);
  for (const CbcKat& kat : kCbcKats) {
    const Aes aes(from_hex(kat.key));
    const Bytes expect_ct = from_hex(kat.ct);
    Bytes prev = from_hex(kSp800_38aIv);
    for (std::size_t b = 0; b < pt.size(); b += 16) {
      std::uint8_t x[16], ct[16], back[16];
      for (int i = 0; i < 16; ++i) x[i] = pt[b + i] ^ prev[i];
      aes.encrypt_block(x, ct);
      EXPECT_EQ(to_hex(ByteSpan(ct, 16)),
                to_hex(ByteSpan(expect_ct).subspan(b, 16)))
          << "block " << b / 16;
      aes.decrypt_block(ct, back);
      EXPECT_EQ(to_hex(ByteSpan(back, 16)), to_hex(ByteSpan(x, 16)));
      prev.assign(ct, ct + 16);
    }
  }
}

class CbcRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CbcRoundTrip, EncryptDecrypt) {
  const Bytes key(16, 0x42);
  const Bytes iv(16, 0x24);
  const Bytes pt(GetParam(), 0x77);
  const Bytes ct = aes_cbc_encrypt(key, iv, pt);
  EXPECT_EQ(ct.size() % 16, 0u);
  EXPECT_GT(ct.size(), pt.size());  // always at least one pad byte
  EXPECT_EQ(aes_cbc_decrypt(key, iv, ct), pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CbcRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 200,
                                           1000));

TEST(AesCbcTest, WrongKeyFailsPaddingOrContent) {
  const Bytes key(16, 1), wrong(16, 2), iv(16, 0);
  const Bytes pt = str_bytes("attack at dawn!!");
  const Bytes ct = aes_cbc_encrypt(key, iv, pt);
  // Wrong-key decrypt either throws (bad padding) or yields garbage.
  try {
    const Bytes out = aes_cbc_decrypt(wrong, iv, ct);
    EXPECT_NE(out, pt);
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(AesCbcTest, RejectsBadSizes) {
  const Bytes key(16, 1), iv(16, 0);
  EXPECT_THROW(aes_cbc_decrypt(key, iv, Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(aes_cbc_decrypt(key, iv, Bytes{}), std::invalid_argument);
  EXPECT_THROW(aes_cbc_encrypt(key, Bytes(8, 0), Bytes(16, 0)),
               std::invalid_argument);
}

TEST(AesCbcTest, IvChangesCiphertext) {
  const Bytes key(16, 1);
  const Bytes pt(32, 0x55);
  EXPECT_NE(aes_cbc_encrypt(key, Bytes(16, 0), pt),
            aes_cbc_encrypt(key, Bytes(16, 1), pt));
}

TEST(SealedBoxTest, SealOpenRoundTrip) {
  const Bytes session_key(32, 0xaa);
  const Bytes iv(16, 3);
  const Bytes pt = str_bytes("PROF_O variant for managers");
  const Bytes box = SealedBox::seal(session_key, iv, pt);
  EXPECT_EQ(box.size(), SealedBox::sealed_size(pt.size()));
  EXPECT_EQ(SealedBox::open(session_key, box), pt);
}

TEST(SealedBoxTest, WrongKeyDoesNotVerify) {
  const Bytes k1(32, 1), k2(32, 2), iv(16, 0);
  const Bytes box = SealedBox::seal(k1, iv, str_bytes("secret"));
  EXPECT_TRUE(SealedBox::verifies(k1, box));
  EXPECT_FALSE(SealedBox::verifies(k2, box));
  EXPECT_THROW(SealedBox::open(k2, box), std::invalid_argument);
}

TEST(SealedBoxTest, TamperedBoxRejected) {
  const Bytes key(32, 1), iv(16, 0);
  Bytes box = SealedBox::seal(key, iv, str_bytes("secret"));
  for (std::size_t pos : {std::size_t{0}, box.size() / 2, box.size() - 1}) {
    Bytes bad = box;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(SealedBox::verifies(key, bad)) << "pos=" << pos;
  }
}

TEST(SealedBoxTest, TruncatedBoxRejected) {
  const Bytes key(32, 1), iv(16, 0);
  const Bytes box = SealedBox::seal(key, iv, str_bytes("secret"));
  EXPECT_FALSE(SealedBox::verifies(key, ByteSpan(box).first(10)));
  EXPECT_FALSE(SealedBox::verifies(key, {}));
}

TEST(SealedBoxTest, SealedSizeMatchesPaperLayout) {
  // §IX-A: a 200 B PROF sealed with 16 B IV + 32 B MAC gives 248 B... the
  // paper counts CBC output as exactly the profile size; with PKCS#7 the
  // 200 B profile pads to 208 B, so our envelope is 256 B. The envelope
  // layout (IV + CT + 32 B tag) is the paper's; padding adds 8 B.
  EXPECT_EQ(SealedBox::sealed_size(200), 16u + 208u + 32u);
}

}  // namespace
}  // namespace argus::crypto
