// Negative-vector tests for batch signature verification: the contract is
// that ecdsa_verify_batch returns exactly the verdicts per-item
// ecdsa_verify would — so a batch with one corrupted entry must fall back
// and reject only that entry, and Wycheproof-style malformed values
// (r or s = 0, s >= n, identity keys) must be rejected identically by the
// single and batched paths.
#include "crypto/ecdsa.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/ec.hpp"

namespace argus::crypto {
namespace {

struct Fixture {
  const EcGroup& g;
  std::vector<EcKeyPair> keys;
  std::vector<EcdsaBatchItem> items;

  explicit Fixture(Strength s, int count, std::string_view seed)
      : g(group_for(s)) {
    HmacDrbg rng(str_bytes(seed));
    for (int i = 0; i < count; ++i) {
      keys.push_back(ec_generate(g, rng));
      Bytes msg = rng.generate(40);
      EcdsaBatchItem item;
      item.pub = keys.back().pub;
      item.message = std::move(msg);
      item.sig = ecdsa_sign(g, keys.back().priv, item.message);
      items.push_back(std::move(item));
    }
  }
};

std::vector<bool> single_verdicts(const EcGroup& g,
                                  const std::vector<EcdsaBatchItem>& items) {
  std::vector<bool> out;
  out.reserve(items.size());
  for (const auto& it : items) {
    out.push_back(ecdsa_verify(g, it.pub, it.message, it.sig));
  }
  return out;
}

void expect_matches_single(const EcGroup& g,
                           const std::vector<EcdsaBatchItem>& items) {
  EcdsaBatchStats stats;
  EXPECT_EQ(ecdsa_verify_batch(g, items, &stats),
            single_verdicts(g, items));
}

class EcdsaBatchTest : public ::testing::TestWithParam<Strength> {};

TEST_P(EcdsaBatchTest, AllValidBatchAccepts) {
  Fixture f(GetParam(), 9, "batch-valid");
  EcdsaBatchStats stats;
  const auto verdicts = ecdsa_verify_batch(f.g, f.items, &stats);
  for (bool v : verdicts) EXPECT_TRUE(v);
  // All nine items settle through batch equations, none individually.
  EXPECT_EQ(stats.batched, 9u);
  EXPECT_EQ(stats.fallback_single, 0u);
  EXPECT_EQ(stats.batch_failures, 0u);
}

TEST_P(EcdsaBatchTest, EmptyBatchIsEmpty) {
  const EcGroup& g = group_for(GetParam());
  EXPECT_TRUE(ecdsa_verify_batch(g, {}).empty());
}

TEST_P(EcdsaBatchTest, FlippedRBitRejectsOnlyThatItem) {
  Fixture f(GetParam(), 8, "batch-flip-r");
  // Flip the low bit of one r: the sub-batch equation fails, the fallback
  // re-checks each member, and only the tampered item is rejected.
  f.items[3].sig.r.w[0] ^= 1;
  EcdsaBatchStats stats;
  const auto verdicts = ecdsa_verify_batch(f.g, f.items, &stats);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 3) << "item " << i;
  }
  // The tampered item was re-checked individually — either its sub-batch
  // equation failed, or the flipped r stopped being a curve x-coordinate
  // and it shunted straight to the single path.
  EXPECT_GE(stats.fallback_single, 1u);
  expect_matches_single(f.g, f.items);
}

TEST_P(EcdsaBatchTest, SwappedMessageRejectsOnlyThatItem) {
  Fixture f(GetParam(), 8, "batch-swap-msg");
  // Swap two messages (signatures stay with their original items): both
  // affected items must reject, the rest must accept.
  std::swap(f.items[1].message, f.items[6].message);
  const auto verdicts = ecdsa_verify_batch(f.g, f.items);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 1 && i != 6) << "item " << i;
  }
  expect_matches_single(f.g, f.items);
}

TEST_P(EcdsaBatchTest, WrongPubkeyRejectsOnlyThatItem) {
  Fixture f(GetParam(), 8, "batch-wrong-pub");
  f.items[5].pub = f.keys[2].pub;  // valid curve point, wrong signer
  const auto verdicts = ecdsa_verify_batch(f.g, f.items);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 5) << "item " << i;
  }
  expect_matches_single(f.g, f.items);
}

TEST_P(EcdsaBatchTest, IdentityPubkeyRejectsOnlyThatItem) {
  Fixture f(GetParam(), 8, "batch-identity-pub");
  f.items[2].pub = EcPoint::identity();
  const auto verdicts = ecdsa_verify_batch(f.g, f.items);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 2) << "item " << i;
  }
  expect_matches_single(f.g, f.items);
}

TEST_P(EcdsaBatchTest, MalformedScalarsMatchSingleVerify) {
  // Wycheproof-style malformed values: r = 0, s = 0, s = n, s > n,
  // r = n, r = n - 1 (wrong but in range). Each lives in an otherwise
  // valid batch; the batch verdicts must equal the single verdicts, i.e.
  // every malformed item rejects and every honest one accepts.
  const struct {
    const char* label;
    void (*mutate)(const EcGroup&, EcdsaSignature&);
  } kCases[] = {
      {"r=0", [](const EcGroup&, EcdsaSignature& s) { s.r = UInt{}; }},
      {"s=0", [](const EcGroup&, EcdsaSignature& s) { s.s = UInt{}; }},
      {"s=n", [](const EcGroup& g, EcdsaSignature& s) { s.s = g.params().n; }},
      {"s>n",
       [](const EcGroup& g, EcdsaSignature& s) {
         s.s = add(g.params().n, UInt::from_u64(5));
       }},
      {"r=n", [](const EcGroup& g, EcdsaSignature& s) { s.r = g.params().n; }},
      {"r=n-1",
       [](const EcGroup& g, EcdsaSignature& s) {
         s.r = sub(g.params().n, UInt::from_u64(1));
       }},
  };
  for (const auto& c : kCases) {
    Fixture f(GetParam(), 6, "batch-malformed");
    c.mutate(f.g, f.items[4].sig);
    const auto verdicts = ecdsa_verify_batch(f.g, f.items);
    const auto singles = single_verdicts(f.g, f.items);
    EXPECT_EQ(verdicts, singles) << c.label;
    EXPECT_FALSE(verdicts[4]) << c.label;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      if (i != 4) {
        EXPECT_TRUE(verdicts[i]) << c.label << " item " << i;
      }
    }
  }
}

TEST_P(EcdsaBatchTest, NonCanonicalEncodingRejectedIdentically) {
  // A non-canonical encoding (s >= n written out in the fixed-width wire
  // form, then decoded back) must be rejected by the single and batch
  // paths identically — the range check is the same pre-screen in both.
  Fixture f(GetParam(), 5, "batch-noncanon");
  const EcGroup& g = f.g;
  EcdsaSignature bad = f.items[0].sig;
  bad.s = add(g.params().n, UInt::from_u64(1));
  const auto decoded = EcdsaSignature::from_bytes(g, bad.to_bytes(g));
  ASSERT_TRUE(decoded.has_value());
  f.items[0].sig = *decoded;
  EXPECT_FALSE(ecdsa_verify(g, f.items[0].pub, f.items[0].message,
                            f.items[0].sig));
  const auto verdicts = ecdsa_verify_batch(g, f.items);
  EXPECT_FALSE(verdicts[0]);
  for (std::size_t i = 1; i < verdicts.size(); ++i) {
    EXPECT_TRUE(verdicts[i]) << "item " << i;
  }
  expect_matches_single(g, f.items);
}

TEST_P(EcdsaBatchTest, MultipleCorruptionsAcrossSubBatches) {
  // Corrupt items in different sub-batches (stride 4): every sub-batch
  // containing a corruption falls back; clean sub-batches stay batched.
  // Corrupt s (not r), so both items keep a recoverable R point and stay
  // inside their batch equations instead of shunting to the single path.
  Fixture f(GetParam(), 12, "batch-multi");
  f.items[0].sig.s.w[0] ^= 1;
  f.items[9].sig.s.w[0] ^= 2;
  EcdsaBatchStats stats;
  const auto verdicts = ecdsa_verify_batch(f.g, f.items, &stats);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 0 && i != 9) << "item " << i;
  }
  // The clean middle sub-batch (items 4..7) still settles via the batch
  // equation.
  EXPECT_GE(stats.batched, 4u);
  EXPECT_EQ(stats.batch_failures, 2u);
  expect_matches_single(f.g, f.items);
}

TEST_P(EcdsaBatchTest, DifferentialFuzzAgainstSingleVerify) {
  // Randomized corruption sweep: every batch verdict vector must equal
  // the single-verify vector, whatever we break.
  HmacDrbg rng(str_bytes("batch-fuzz"));
  for (int round = 0; round < 6; ++round) {
    Fixture f(GetParam(), 7, "batch-fuzz-items");
    // Corrupt a pseudo-random subset.
    const Bytes picks = rng.generate(7);
    for (std::size_t i = 0; i < f.items.size(); ++i) {
      if (picks[i] & 1) f.items[i].sig.s.w[0] ^= (picks[i] | 1);
      if (picks[i] & 2) f.items[i].message.push_back(0x5a);
    }
    expect_matches_single(f.g, f.items);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrengths, EcdsaBatchTest,
                         ::testing::Values(Strength::b112, Strength::b128,
                                           Strength::b192, Strength::b256));

}  // namespace
}  // namespace argus::crypto
