#include "crypto/drbg.hpp"

#include <gtest/gtest.h>

#include <set>

namespace argus::crypto {
namespace {

TEST(DrbgTest, DeterministicFromSeed) {
  HmacDrbg a(str_bytes("seed"));
  HmacDrbg b(str_bytes("seed"));
  EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(DrbgTest, DifferentSeedsDiffer) {
  HmacDrbg a(str_bytes("seed-a"));
  HmacDrbg b(str_bytes("seed-b"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(DrbgTest, PersonalizationSeparates) {
  HmacDrbg a(str_bytes("seed"), {}, str_bytes("p1"));
  HmacDrbg b(str_bytes("seed"), {}, str_bytes("p2"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(DrbgTest, SequentialOutputsDiffer) {
  HmacDrbg a(str_bytes("seed"));
  EXPECT_NE(a.generate(32), a.generate(32));
}

TEST(DrbgTest, ReseedChangesStream) {
  HmacDrbg a(str_bytes("seed"));
  HmacDrbg b(str_bytes("seed"));
  (void)a.generate(8);
  (void)b.generate(8);
  b.reseed(str_bytes("fresh entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(DrbgTest, GenerateZeroAndOddSizes) {
  HmacDrbg a(str_bytes("seed"));
  EXPECT_TRUE(a.generate(0).empty());
  EXPECT_EQ(a.generate(1).size(), 1u);
  EXPECT_EQ(a.generate(33).size(), 33u);
}

TEST(DrbgTest, UniformStaysBelowBound) {
  HmacDrbg a(str_bytes("seed"));
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(a.uniform(7), 7u);
  }
}

TEST(DrbgTest, UniformCoversRange) {
  HmacDrbg a(str_bytes("seed"));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(a.uniform(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(DrbgTest, UniformZeroBound) {
  HmacDrbg a(str_bytes("seed"));
  EXPECT_EQ(a.uniform(0), 0u);
  EXPECT_EQ(a.uniform(1), 0u);
}

TEST(DrbgTest, MakeRngSeparatesByName) {
  auto a = make_rng(7, "node-a");
  auto b = make_rng(7, "node-b");
  auto a2 = make_rng(7, "node-a");
  EXPECT_NE(a.generate(16), b.generate(16));
  EXPECT_EQ(make_rng(7, "node-a").generate(16), a2.generate(16));
}

}  // namespace
}  // namespace argus::crypto
