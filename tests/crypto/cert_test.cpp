#include "crypto/cert.hpp"

#include <gtest/gtest.h>

namespace argus::crypto {
namespace {

class CertFixture : public ::testing::Test {
 protected:
  CertFixture() : group_(group_for(Strength::b128)), rng_(str_bytes("cert")) {
    admin_ = ec_generate(group_, rng_);
    holder_ = ec_generate(group_, rng_);
    cert_.subject_id = "subject:alice";
    cert_.role = EntityRole::kSubject;
    cert_.strength = Strength::b128;
    cert_.pubkey = group_.encode_point(holder_.pub);
    cert_.serial = 42;
    cert_.not_before = 100;
    cert_.not_after = 10000;
    sign_certificate(group_, admin_.priv, cert_);
  }

  const EcGroup& group_;
  HmacDrbg rng_;
  EcKeyPair admin_;
  EcKeyPair holder_;
  Certificate cert_;
};

TEST_F(CertFixture, VerifiesWithinWindow) {
  EXPECT_TRUE(verify_certificate(group_, admin_.pub, cert_, 500));
}

TEST_F(CertFixture, RejectsOutsideValidity) {
  EXPECT_FALSE(verify_certificate(group_, admin_.pub, cert_, 50));
  EXPECT_FALSE(verify_certificate(group_, admin_.pub, cert_, 20000));
}

TEST_F(CertFixture, RejectsWrongAdmin) {
  HmacDrbg rng(str_bytes("other-admin"));
  const EcKeyPair rogue = ec_generate(group_, rng);
  EXPECT_FALSE(verify_certificate(group_, rogue.pub, cert_, 500));
}

TEST_F(CertFixture, RejectsFieldTampering) {
  Certificate forged = cert_;
  forged.subject_id = "subject:mallory";
  EXPECT_FALSE(verify_certificate(group_, admin_.pub, forged, 500));
  forged = cert_;
  forged.role = EntityRole::kAdmin;
  EXPECT_FALSE(verify_certificate(group_, admin_.pub, forged, 500));
}

TEST_F(CertFixture, WireSizeMatchesPaper) {
  // §IX-A: 552 B X.509 ECDSA certificate at 128-bit strength.
  EXPECT_EQ(Certificate::wire_size(Strength::b128), 552u);
  EXPECT_EQ(cert_.serialize().size(), 552u);
}

TEST_F(CertFixture, WireSizeScalesWithStrength) {
  EXPECT_LT(Certificate::wire_size(Strength::b112),
            Certificate::wire_size(Strength::b128));
  EXPECT_LT(Certificate::wire_size(Strength::b128),
            Certificate::wire_size(Strength::b192));
  EXPECT_LT(Certificate::wire_size(Strength::b192),
            Certificate::wire_size(Strength::b256));
}

TEST_F(CertFixture, SerializeParseRoundTrip) {
  const Bytes wire = cert_.serialize();
  const auto parsed = Certificate::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->subject_id, cert_.subject_id);
  EXPECT_EQ(parsed->pubkey, cert_.pubkey);
  EXPECT_EQ(parsed->serial, cert_.serial);
  EXPECT_EQ(parsed->signature, cert_.signature);
  EXPECT_TRUE(verify_certificate(group_, admin_.pub, *parsed, 500));
}

TEST_F(CertFixture, ParseRejectsGarbage) {
  EXPECT_FALSE(Certificate::parse({}).has_value());
  EXPECT_FALSE(Certificate::parse(Bytes(10, 0xFF)).has_value());
  Bytes wire = cert_.serialize();
  wire.resize(wire.size() - 5);  // wrong pad length
  EXPECT_FALSE(Certificate::parse(wire).has_value());
}

TEST_F(CertFixture, ParsedSignatureCoversAllFields) {
  // Tamper a byte inside the serialized TBS region; parse should succeed
  // but verification must fail.
  Bytes wire = cert_.serialize();
  wire[3] ^= 0x01;
  const auto parsed = Certificate::parse(wire);
  if (parsed.has_value()) {
    EXPECT_FALSE(verify_certificate(group_, admin_.pub, *parsed, 500));
  }
}

}  // namespace
}  // namespace argus::crypto
