// Differential tests for the precomputed-table hot paths: every fast
// scalar-multiplication route (comb fixed-base, per-key window tables,
// Shamir's trick, a = -3 doubling) is byte-compared against the frozen
// reference implementation across seeded random scalars and the classic
// edge cases (0, 1, n-1, n, k >= n).
#include "crypto/ec_precomp.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "crypto/drbg.hpp"
#include "crypto/ec.hpp"
#include "crypto/mont.hpp"

namespace argus::crypto {
namespace {

/// Scoped fast-path override; restores the previous configuration so test
/// order cannot leak one case's toggles into another.
class FastPathGuard {
 public:
  explicit FastPathGuard(const EcFastPaths& paths) : saved_(ec_fast_paths()) {
    set_ec_fast_paths(paths);
  }
  ~FastPathGuard() { set_ec_fast_paths(saved_); }

 private:
  EcFastPaths saved_;
};

std::vector<UInt> fuzz_scalars(const EcGroup& g, std::string_view seed,
                               int count) {
  const UInt& n = g.params().n;
  std::vector<UInt> out;
  // Edge scalars first: 0, 1, n-1, n, n+1, 2n-1, and a far-above-n value
  // (the reference path reduces mod n, so the fast paths must too).
  out.push_back(UInt{});
  out.push_back(UInt::from_u64(1));
  out.push_back(sub(n, UInt::from_u64(1)));
  out.push_back(n);
  out.push_back(add(n, UInt::from_u64(1)));
  out.push_back(sub(add(n, n), UInt::from_u64(1)));
  out.push_back(add(add(n, n), UInt::from_u64(12345)));
  HmacDrbg rng(str_bytes(seed));
  for (int i = 0; i < count; ++i) out.push_back(g.random_scalar(rng));
  return out;
}

class EcPrecompTest : public ::testing::TestWithParam<Strength> {
 protected:
  const EcGroup& g() const { return group_for(GetParam()); }
};

TEST_P(EcPrecompTest, FixedBaseMatchesReference) {
  for (const UInt& k : fuzz_scalars(g(), "fixed-base-fuzz", 24)) {
    const EcPoint want = g().scalar_mul_reference(g().generator(), k);
    EXPECT_EQ(fixed_base_mul(g(), k), want);
    EXPECT_EQ(g().scalar_mul_base(k), want);  // dispatch path
  }
}

TEST_P(EcPrecompTest, ScalarMulFastDoubleMatchesReference) {
  // scalar_mul uses the a = -3 specialised doubling when enabled; the
  // reference path uses the general formula. Results must be identical.
  HmacDrbg rng(str_bytes("fast-double-pt"));
  const EcPoint p = g().scalar_mul_reference(g().generator(),
                                             g().random_scalar(rng));
  for (const UInt& k : fuzz_scalars(g(), "fast-double-fuzz", 16)) {
    EXPECT_EQ(g().scalar_mul(p, k), g().scalar_mul_reference(p, k));
  }
}

TEST_P(EcPrecompTest, PerKeyTableMatchesReference) {
  HmacDrbg rng(str_bytes("precomp-pt"));
  const EcPoint p = g().scalar_mul_reference(g().generator(),
                                             g().random_scalar(rng));
  const EcPrecomp tab(g(), p);
  for (const UInt& k : fuzz_scalars(g(), "precomp-fuzz", 16)) {
    EXPECT_EQ(tab.mul(k), g().scalar_mul_reference(p, k));
  }
}

TEST_P(EcPrecompTest, ConstantTimeSelectMatchesDirectLookup) {
  // entry_ct is the hardened lookup behind mul()/mul_jac(): a masked
  // sweep of the whole table must hand back exactly the slot the direct
  // (secret-indexed) lookup would have.
  HmacDrbg rng(str_bytes("ct-select-pt"));
  const EcPoint p = g().scalar_mul_reference(g().generator(),
                                             g().random_scalar(rng));
  const EcPrecomp tab(g(), p);
  for (std::size_t v = 1; v <= EcPrecomp::kTableSize; ++v) {
    const EcGroup::AffM direct = tab.entry(v);
    const EcGroup::AffM swept = tab.entry_ct(v);
    EXPECT_EQ(swept.x, direct.x) << "v=" << v;
    EXPECT_EQ(swept.y, direct.y) << "v=" << v;
  }
}

TEST_P(EcPrecompTest, ConstantTimeMulHitsEveryWindowValue) {
  // Scalars whose nibbles sweep every window value (0x111..., 0x222...,
  // ..., 0xFFF...) drive each table slot through the constant-time path;
  // the result must stay bit-identical to the reference algorithm.
  HmacDrbg rng(str_bytes("ct-mul-pt"));
  const EcPoint p = g().scalar_mul_reference(g().generator(),
                                             g().random_scalar(rng));
  const EcPrecomp tab(g(), p);
  for (std::uint64_t nib = 1; nib <= 15; ++nib) {
    UInt k;
    for (std::size_t w = 0; w < 3; ++w) {
      k.w[w] = nib * 0x1111111111111111ull;
    }
    EXPECT_EQ(tab.mul(k), g().scalar_mul_reference(p, k)) << "nibble " << nib;
  }
}

TEST_P(EcPrecompTest, PrecompOfIdentityIsIdentity) {
  const EcPrecomp tab(g(), EcPoint::identity());
  EXPECT_TRUE(tab.is_identity_point());
  EXPECT_TRUE(tab.mul(UInt::from_u64(7)).infinity);
}

TEST_P(EcPrecompTest, CacheReturnsWorkingTables) {
  HmacDrbg rng(str_bytes("cache-pt"));
  EcPrecompCache cache(2);
  const EcPoint a = g().scalar_mul_reference(g().generator(),
                                             g().random_scalar(rng));
  const EcPoint b = g().scalar_mul_reference(g().generator(),
                                             g().random_scalar(rng));
  const EcPoint c = g().scalar_mul_reference(g().generator(),
                                             g().random_scalar(rng));
  const UInt k = g().random_scalar(rng);
  EXPECT_EQ(cache.get(g(), a)->mul(k), g().scalar_mul_reference(a, k));
  EXPECT_EQ(cache.get(g(), a)->mul(k), g().scalar_mul_reference(a, k));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // Capacity 2: a third point evicts, but the handed-out table (shared
  // ownership) keeps working.
  const auto tab_a = cache.get(g(), a);
  (void)cache.get(g(), b);
  (void)cache.get(g(), c);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_EQ(tab_a->mul(k), g().scalar_mul_reference(a, k));
}

TEST_P(EcPrecompTest, ShamirVerifyMatchesReferenceEquation) {
  HmacDrbg rng(str_bytes("shamir-fuzz"));
  const UInt& n = g().params().n;
  const MontCtx fn(n);
  for (int i = 0; i < 12; ++i) {
    const UInt u1 = g().random_scalar(rng);
    const UInt u2 = g().random_scalar(rng);
    const EcPoint q = g().scalar_mul_reference(g().generator(),
                                               g().random_scalar(rng));
    const EcPrecomp qtab(g(), q);
    const EcPoint sum = g().add(g().scalar_mul_reference(g().generator(), u1),
                                g().scalar_mul_reference(q, u2));
    ASSERT_FALSE(sum.infinity);
    const UInt r = fn.reduce(sum.x);
    EXPECT_TRUE(shamir_verify_x(g(), qtab, u1, u2, r));
    // Any other r must fail.
    const UInt bad = addmod(r, UInt::from_u64(1), n);
    EXPECT_FALSE(shamir_verify_x(g(), qtab, u1, u2, bad));
  }
}

TEST_P(EcPrecompTest, ShamirVerifyRejectsSumAtInfinity) {
  // u1*G + u2*Q with Q = -G and u1 == u2 sums to the identity; the
  // reference epilogue rejects that, so the fused check must too.
  const EcPoint q = g().negate(g().generator());
  const EcPrecomp qtab(g(), q);
  const UInt u = UInt::from_u64(42);
  EXPECT_FALSE(shamir_verify_x(g(), qtab, u, u, UInt::from_u64(1)));
}

TEST_P(EcPrecompTest, MsmMatchesReferenceSum) {
  HmacDrbg rng(str_bytes("msm-fuzz"));
  const UInt& n = g().params().n;
  std::vector<EcPoint> pts;
  std::vector<UInt> ks;
  std::vector<EcPrecomp> tabs;
  tabs.reserve(4);
  for (int i = 0; i < 4; ++i) {
    pts.push_back(g().scalar_mul_reference(g().generator(),
                                           g().random_scalar(rng)));
    ks.push_back(mod(g().random_scalar(rng), n));
    tabs.emplace_back(g(), pts.back());
  }
  std::vector<MsmTerm> terms;
  EcPoint want = EcPoint::identity();
  for (int i = 0; i < 4; ++i) {
    terms.push_back({&tabs[i], ks[i]});
    want = g().add(want, g().scalar_mul_reference(pts[i], ks[i]));
  }
  const EcGroup::Jacobian acc = msm(g(), terms);
  EXPECT_EQ(g().to_affine(acc), want);
}

TEST_P(EcPrecompTest, ScalarMulJacMatchesReference) {
  HmacDrbg rng(str_bytes("jac-fuzz"));
  const EcPoint p = g().scalar_mul_reference(g().generator(),
                                             g().random_scalar(rng));
  for (int i = 0; i < 8; ++i) {
    const UInt k = mod(g().random_scalar(rng), g().params().n);
    EXPECT_EQ(g().to_affine(scalar_mul_jac(g(), p, k)),
              g().scalar_mul_reference(p, k));
  }
}

TEST_P(EcPrecompTest, DisabledFastPathsStillMatch) {
  // With every toggle off, the dispatchers must collapse to the frozen
  // reference algorithms — and produce the same bytes they do when on.
  HmacDrbg rng(str_bytes("toggle-fuzz"));
  const UInt k = g().random_scalar(rng);
  const EcPoint fast = g().scalar_mul_base(k);
  FastPathGuard guard(EcFastPaths{false, false, false, false});
  EXPECT_EQ(g().scalar_mul_base(k), fast);
  EXPECT_EQ(g().scalar_mul_base(k),
            g().scalar_mul_reference(g().generator(), k));
}

TEST_P(EcPrecompTest, LiftXRecoversCurvePoints) {
  HmacDrbg rng(str_bytes("lift-x"));
  for (int i = 0; i < 8; ++i) {
    const EcPoint p = g().scalar_mul_reference(g().generator(),
                                               g().random_scalar(rng));
    const auto lifted = g().lift_x(p.x);
    ASSERT_TRUE(lifted.has_value());
    EXPECT_TRUE(g().on_curve(*lifted));
    EXPECT_EQ(lifted->x, p.x);
    // The recovered y is p.y or its negation.
    const bool matches = lifted->y == p.y || lifted->y == g().negate(p).y;
    EXPECT_TRUE(matches);
  }
}

TEST_P(EcPrecompTest, FixedBaseTableShape) {
  const EcFixedBaseTable& tab = g().fixed_base_table();
  const std::size_t bits = g().params().n.bit_length();
  EXPECT_EQ(tab.windows, (bits + 7) / 8);
  EXPECT_EQ(tab.entries.size(),
            tab.windows * EcFixedBaseTable::kEntriesPerWindow);
  // Spot-check one entry: (window 1, v 3) is 3 * 2^8 * G in
  // affine-Montgomery form — exactly to_jacobian(want)'s x and y, since
  // to_jacobian of an affine point uses z = 1.
  const EcGroup::AffM& e = tab.entry(1, 3);
  const EcGroup::Jacobian want = g().to_jacobian(
      g().scalar_mul_reference(g().generator(), UInt::from_u64(3 * 256)));
  EXPECT_EQ(e.x, want.x);
  EXPECT_EQ(e.y, want.y);
}

INSTANTIATE_TEST_SUITE_P(AllStrengths, EcPrecompTest,
                         ::testing::Values(Strength::b112, Strength::b128,
                                           Strength::b192, Strength::b256));

// ---------------------------------------------------------------------------
// Montgomery-context helpers the pipeline leans on: sqrt and batch_inv.

class MontExtTest : public ::testing::TestWithParam<Strength> {
 protected:
  const EcGroup& g() const { return group_for(GetParam()); }
};

TEST_P(MontExtTest, SqrtRoundTripsSquares) {
  const MontCtx fp(g().params().p);
  HmacDrbg rng(str_bytes("sqrt-fuzz"));
  for (int i = 0; i < 12; ++i) {
    const UInt a = mod(UInt::from_bytes_be(rng.generate(48)), g().params().p);
    const UInt a_m = fp.to_mont(a);
    const UInt sq = fp.sqr(a_m);
    const auto root = fp.sqrt(sq);
    ASSERT_TRUE(root.has_value());
    // Either root of a^2 is acceptable; both square back to a^2.
    EXPECT_EQ(fp.sqr(*root), sq);
  }
  EXPECT_EQ(fp.sqrt(UInt{}), UInt{});
}

TEST_P(MontExtTest, SqrtRejectsNonResidues) {
  const MontCtx fp(g().params().p);
  HmacDrbg rng(str_bytes("nonresidue-fuzz"));
  int rejected = 0;
  for (int i = 0; i < 24 && rejected < 4; ++i) {
    const UInt a = mod(UInt::from_bytes_be(rng.generate(48)), g().params().p);
    if (a.is_zero()) continue;
    if (!fp.sqrt(fp.to_mont(a)).has_value()) ++rejected;
  }
  // Half of all nonzero field elements are non-residues; 24 draws missing
  // four of them has probability ~2^-18.
  EXPECT_GE(rejected, 4);
}

TEST_P(MontExtTest, BatchInvMatchesSingleInv) {
  const MontCtx fp(g().params().p);
  HmacDrbg rng(str_bytes("batchinv-fuzz"));
  std::vector<UInt> vals;
  std::vector<UInt> want;
  for (int i = 0; i < 9; ++i) {
    UInt a;
    do {
      a = mod(UInt::from_bytes_be(rng.generate(48)), g().params().p);
    } while (a.is_zero());
    vals.push_back(fp.to_mont(a));
    want.push_back(fp.inv(vals.back()));
  }
  fp.batch_inv(vals);
  EXPECT_EQ(vals, want);
  std::vector<UInt> empty;
  fp.batch_inv(empty);  // no-op, must not throw
  std::vector<UInt> with_zero{fp.one(), UInt{}};
  EXPECT_THROW(fp.batch_inv(with_zero), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllStrengths, MontExtTest,
                         ::testing::Values(Strength::b112, Strength::b128,
                                           Strength::b192, Strength::b256));

}  // namespace
}  // namespace argus::crypto
