#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

namespace argus::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, str_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(str_bytes("Jefe"),
                               str_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case4CompositeKey) {
  // 25-byte incrementing key over 50 bytes of 0xcd.
  Bytes key(25);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i + 1);
  }
  const Bytes data(50, 0xcd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacTest, Rfc4231Case5TruncatedTag) {
  // RFC 4231 case 5 publishes only the leading 128 bits of the MAC — the
  // truncated-tag form Argus uses for short authenticators. The truncation
  // must be the prefix of the full MAC, not a recomputation.
  const Bytes key(20, 0x0c);
  const Bytes mac = hmac_sha256(key, str_bytes("Test With Truncation"));
  ASSERT_EQ(mac.size(), 32u);
  EXPECT_EQ(to_hex(ByteSpan(mac).first(16)),
            "a3b6167473100ee06e0c796c2955552b");
}

TEST(HmacTest, Rfc4231Case7LongKeyLongData) {
  // 131-byte key (hashed first) over >1 block of data.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key,
                str_bytes("This is a test using a larger than block-size key "
                          "and a larger than block-size data. The key needs "
                          "to be hashed before being used by the HMAC "
                          "algorithm."))),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacTest, TruncatedTagsStayDistinct) {
  // Truncating to 16 bytes must not collide the label-separated PRF
  // outputs we rely on for session/finished keys.
  const Bytes secret = str_bytes("secret");
  const Bytes a = prf(secret, "session key", str_bytes("seed"));
  const Bytes b = prf(secret, "subject finished", str_bytes("seed"));
  EXPECT_NE(Bytes(a.begin(), a.begin() + 16), Bytes(b.begin(), b.begin() + 16));
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, str_bytes("Test Using Larger Than Block-Size Key - "
                               "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  const Bytes msg = str_bytes("message");
  EXPECT_NE(hmac_sha256(str_bytes("k1"), msg),
            hmac_sha256(str_bytes("k2"), msg));
}

TEST(HmacTest, PrfIsLabelSeparated) {
  const Bytes secret = str_bytes("secret");
  const Bytes seed = str_bytes("seed");
  EXPECT_NE(prf(secret, "session key", seed),
            prf(secret, "subject finished", seed));
}

TEST(HmacTest, PrfMatchesManualConcat) {
  const Bytes secret = str_bytes("s");
  const Bytes seed = {1, 2, 3};
  EXPECT_EQ(prf(secret, "lbl", seed),
            hmac_sha256(secret, concat({str_bytes("lbl"), seed})));
}

TEST(HmacTest, PrfExpandLengths) {
  const Bytes secret = str_bytes("secret");
  for (std::size_t n : {0u, 1u, 31u, 32u, 33u, 48u, 64u, 100u}) {
    EXPECT_EQ(prf_expand(secret, "x", {}, n).size(), n);
  }
}

TEST(HmacTest, PrfExpandPrefixConsistency) {
  // Counter-mode expansion: longer output extends shorter output.
  const Bytes secret = str_bytes("secret");
  const Bytes seed = str_bytes("seed");
  Bytes a = prf_expand(secret, "x", seed, 16);
  Bytes b = prf_expand(secret, "x", seed, 48);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

}  // namespace
}  // namespace argus::crypto
