#include "crypto/mont.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/primes.hpp"

namespace argus::crypto {
namespace {

const UInt kP256 = UInt::from_hex(
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");

TEST(MontTest, RoundTrip) {
  const MontCtx ctx(kP256);
  HmacDrbg rng(str_bytes("mont"));
  for (int i = 0; i < 20; ++i) {
    const UInt x = mod(UInt::from_bytes_be(rng.generate(32)), kP256);
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(x)), x);
  }
}

TEST(MontTest, MulMatchesSchoolbook) {
  const MontCtx ctx(kP256);
  HmacDrbg rng(str_bytes("mont-mul"));
  for (int i = 0; i < 20; ++i) {
    const UInt a = mod(UInt::from_bytes_be(rng.generate(32)), kP256);
    const UInt b = mod(UInt::from_bytes_be(rng.generate(32)), kP256);
    const UInt expect = mod(mul_full(a, b), kP256);
    const UInt got =
        ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    EXPECT_EQ(got, expect);
  }
}

TEST(MontTest, MulWorksForFullWidthModulus) {
  // 512-bit modulus with the top bit set exercises the CIOS overflow word.
  UInt m = UInt::from_hex(
      "f000000000000000000000000000000000000000000000000000000000000000"
      "000000000000000000000000000000000000000000000000000000000000000d");
  const MontCtx ctx(m);
  HmacDrbg rng(str_bytes("mont-512"));
  for (int i = 0; i < 20; ++i) {
    const UInt a = mod(UInt::from_bytes_be(rng.generate(64)), m);
    const UInt b = mod(UInt::from_bytes_be(rng.generate(64)), m);
    EXPECT_EQ(ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b))),
              mod(mul_full(a, b), m));
  }
}

TEST(MontTest, OneIsIdentity) {
  const MontCtx ctx(kP256);
  const UInt x_m = ctx.to_mont(UInt::from_u64(12345));
  EXPECT_EQ(ctx.mul(x_m, ctx.one()), x_m);
  EXPECT_EQ(ctx.from_mont(ctx.one()), UInt::one());
}

TEST(MontTest, PowSmallCases) {
  const MontCtx ctx(UInt::from_u64(1000003));  // prime
  const UInt b = ctx.to_mont(UInt::from_u64(2));
  EXPECT_EQ(ctx.from_mont(ctx.pow(b, UInt::from_u64(10))),
            UInt::from_u64(1024));
  EXPECT_EQ(ctx.from_mont(ctx.pow(b, UInt::zero())), UInt::one());
  EXPECT_EQ(ctx.from_mont(ctx.pow(b, UInt::one())), UInt::from_u64(2));
}

TEST(MontTest, FermatLittleTheorem) {
  const MontCtx ctx(kP256);
  HmacDrbg rng(str_bytes("fermat"));
  const UInt exp = sub(kP256, UInt::one());
  for (int i = 0; i < 5; ++i) {
    UInt a = mod(UInt::from_bytes_be(rng.generate(32)), kP256);
    if (a.is_zero()) a = UInt::from_u64(7);
    EXPECT_EQ(ctx.from_mont(ctx.pow(ctx.to_mont(a), exp)), UInt::one());
  }
}

TEST(MontTest, InvTimesSelfIsOne) {
  const MontCtx ctx(kP256);
  HmacDrbg rng(str_bytes("inv"));
  for (int i = 0; i < 10; ++i) {
    UInt a = mod(UInt::from_bytes_be(rng.generate(32)), kP256);
    if (a.is_zero()) a = UInt::from_u64(3);
    const UInt a_m = ctx.to_mont(a);
    EXPECT_EQ(ctx.mul(a_m, ctx.inv(a_m)), ctx.one());
  }
  EXPECT_THROW((void)ctx.inv(UInt::zero()), std::invalid_argument);
}

TEST(MontTest, AddSubNeg) {
  const MontCtx ctx(UInt::from_u64(97));
  EXPECT_EQ(ctx.add(UInt::from_u64(90), UInt::from_u64(10)),
            UInt::from_u64(3));
  EXPECT_EQ(ctx.sub(UInt::from_u64(5), UInt::from_u64(10)),
            UInt::from_u64(92));
  EXPECT_EQ(ctx.neg(UInt::from_u64(1)), UInt::from_u64(96));
  EXPECT_EQ(ctx.neg(UInt::zero()), UInt::zero());
}

TEST(MontTest, RejectsEvenOrZeroModulus) {
  EXPECT_THROW(MontCtx(UInt::from_u64(10)), std::invalid_argument);
  EXPECT_THROW(MontCtx(UInt::zero()), std::invalid_argument);
}

TEST(PrimesTest, KnownPrimes) {
  HmacDrbg rng(str_bytes("primes"));
  EXPECT_TRUE(is_probable_prime(UInt::from_u64(2), rng));
  EXPECT_TRUE(is_probable_prime(UInt::from_u64(3), rng));
  EXPECT_TRUE(is_probable_prime(UInt::from_u64(61), rng));
  EXPECT_TRUE(is_probable_prime(UInt::from_u64(1000003), rng));
  EXPECT_TRUE(is_probable_prime(kP256, rng, 10));
}

TEST(PrimesTest, KnownComposites) {
  HmacDrbg rng(str_bytes("composites"));
  EXPECT_FALSE(is_probable_prime(UInt::zero(), rng));
  EXPECT_FALSE(is_probable_prime(UInt::one(), rng));
  EXPECT_FALSE(is_probable_prime(UInt::from_u64(4), rng));
  EXPECT_FALSE(is_probable_prime(UInt::from_u64(561), rng));   // Carmichael
  EXPECT_FALSE(is_probable_prime(UInt::from_u64(65535), rng));
  // Product of two close primes.
  EXPECT_FALSE(is_probable_prime(UInt::from_u64(1000003ull * 1000033ull), rng));
}

}  // namespace
}  // namespace argus::crypto
