#include "crypto/wide.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace argus::crypto {
namespace {

TEST(WideTest, FromToBytes) {
  const UInt x = UInt::from_hex("0102030405060708090a");
  EXPECT_EQ(to_hex(x.to_bytes_be(10)), "0102030405060708090a");
  EXPECT_EQ(to_hex(x.to_bytes_be(12)), "00000102030405060708090a");
  EXPECT_THROW(x.to_bytes_be(9), std::invalid_argument);
}

TEST(WideTest, FromHexOddLength) {
  EXPECT_EQ(UInt::from_hex("f"), UInt::from_u64(15));
  EXPECT_EQ(UInt::from_hex("100"), UInt::from_u64(256));
}

TEST(WideTest, BitLength) {
  EXPECT_EQ(UInt::zero().bit_length(), 0u);
  EXPECT_EQ(UInt::one().bit_length(), 1u);
  EXPECT_EQ(UInt::from_u64(255).bit_length(), 8u);
  EXPECT_EQ(UInt::from_u64(256).bit_length(), 9u);
  UInt big = UInt::from_hex("1" + std::string(128, '0'));  // 2^512
  EXPECT_EQ(big.bit_length(), 513u);
}

TEST(WideTest, WordCount) {
  EXPECT_EQ(UInt::zero().word_count(), 1u);
  EXPECT_EQ(UInt::from_u64(1).word_count(), 1u);
  EXPECT_EQ(UInt::from_hex("10000000000000000").word_count(), 2u);
}

TEST(WideTest, Cmp) {
  EXPECT_EQ(cmp(UInt::from_u64(5), UInt::from_u64(5)), 0);
  EXPECT_LT(cmp(UInt::from_u64(4), UInt::from_u64(5)), 0);
  EXPECT_GT(cmp(UInt::from_hex("ffffffffffffffffff"), UInt::from_u64(5)), 0);
}

TEST(WideTest, AddSubInverse) {
  const UInt a = UInt::from_hex("123456789abcdef0fedcba9876543210");
  const UInt b = UInt::from_hex("0fedcba987654321123456789abcdef0");
  bool carry = true;
  const UInt s = add(a, b, &carry);
  EXPECT_FALSE(carry);
  bool borrow = true;
  EXPECT_EQ(sub(s, b, &borrow), a);
  EXPECT_FALSE(borrow);
}

TEST(WideTest, AddCarryPropagation) {
  UInt a;
  for (auto& w : a.w) w = ~std::uint64_t{0};  // 2^576 - 1
  bool carry = false;
  const UInt s = add(a, UInt::one(), &carry);
  EXPECT_TRUE(carry);
  EXPECT_TRUE(s.is_zero());
}

TEST(WideTest, SubBorrow) {
  bool borrow = false;
  const UInt r = sub(UInt::zero(), UInt::one(), &borrow);
  EXPECT_TRUE(borrow);
  for (auto w : r.w) EXPECT_EQ(w, ~std::uint64_t{0});
}

TEST(WideTest, Shifts) {
  const UInt x = UInt::from_u64(0x8000000000000001ull);
  const UInt d = shl1(x);
  EXPECT_EQ(d.w[0], 2u);
  EXPECT_EQ(d.w[1], 1u);
  EXPECT_EQ(shr1(d), x);
}

TEST(WideTest, MulFullSmall) {
  const UProd p = mul_full(UInt::from_u64(0xFFFFFFFFFFFFFFFFull),
                           UInt::from_u64(0xFFFFFFFFFFFFFFFFull));
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(p.w[0], 1u);
  EXPECT_EQ(p.w[1], 0xFFFFFFFFFFFFFFFEull);
  EXPECT_EQ(p.w[2], 0u);
}

TEST(WideTest, ModSmall) {
  EXPECT_EQ(mod(UInt::from_u64(100), UInt::from_u64(7)), UInt::from_u64(2));
  EXPECT_EQ(mod(UInt::from_u64(5), UInt::from_u64(7)), UInt::from_u64(5));
}

TEST(WideTest, DivmodIdentity) {
  HmacDrbg rng(str_bytes("divmod"));
  for (int i = 0; i < 30; ++i) {
    const UInt a = UInt::from_bytes_be(rng.generate(40));
    UInt m = UInt::from_bytes_be(rng.generate(20));
    if (m.is_zero()) m = UInt::from_u64(13);
    const DivResult d = divmod(a, m);
    EXPECT_LT(cmp(d.remainder, m), 0);
    // a == q*m + r (q*m fits since q <= a)
    const UProd qm = mul_full(d.quotient, m);
    UInt qm_lo;
    for (std::size_t j = 0; j < kMaxWords; ++j) qm_lo.w[j] = qm.w[j];
    for (std::size_t j = kMaxWords; j < kProdWords; ++j) EXPECT_EQ(qm.w[j], 0u);
    EXPECT_EQ(add(qm_lo, d.remainder), a);
  }
}

TEST(WideTest, ModOfProduct) {
  HmacDrbg rng(str_bytes("modprod"));
  const UInt m = UInt::from_hex("ffffffff00000001000000000000000000000000"
                                "ffffffffffffffffffffffff");
  for (int i = 0; i < 10; ++i) {
    const UInt a = mod(UInt::from_bytes_be(rng.generate(32)), m);
    const UInt b = mod(UInt::from_bytes_be(rng.generate(32)), m);
    const UInt r = mod(mul_full(a, b), m);
    EXPECT_LT(cmp(r, m), 0);
    // (a*b) mod m computed two ways: full product vs incremental addmod.
    UInt acc = UInt::zero();
    // acc = a*b mod m via double-and-add over bits of b.
    UInt base = a;
    for (std::size_t bit = 0; bit < b.bit_length(); ++bit) {
      if (b.bit(bit)) acc = addmod(acc, base, m);
      base = addmod(base, base, m);
    }
    EXPECT_EQ(r, acc);
  }
}

TEST(WideTest, AddmodSubmod) {
  const UInt m = UInt::from_u64(101);
  EXPECT_EQ(addmod(UInt::from_u64(100), UInt::from_u64(5), m),
            UInt::from_u64(4));
  EXPECT_EQ(submod(UInt::from_u64(3), UInt::from_u64(10), m),
            UInt::from_u64(94));
  EXPECT_EQ(submod(UInt::from_u64(10), UInt::from_u64(3), m),
            UInt::from_u64(7));
}

TEST(WideTest, FromBytesTooLongThrows) {
  EXPECT_THROW(UInt::from_bytes_be(Bytes(73, 0xff)), std::invalid_argument);
}

}  // namespace
}  // namespace argus::crypto
