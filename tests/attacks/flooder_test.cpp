// Flooder adversary vs the object engine's overload protection: QUE1
// storms must be shed cheaply by admission control, garbage must die in
// the cheap checks, replayed QUE2 must be answered from cache, and the
// session table must stay bounded under any of them.
#include <gtest/gtest.h>

#include "attacks/adversary.hpp"
#include "attacks/flooder.hpp"

namespace argus::attacks {
namespace {

using backend::AttributeMap;
using backend::Backend;
using backend::Level;
using core::AdmissionParams;
using core::ObjectEngine;
using core::ObjectEngineConfig;

class FlooderFixture : public ::testing::Test {
 protected:
  FlooderFixture() : be_(crypto::Strength::b128, 808) {
    subject_ = be_.register_subject(
        "alice", AttributeMap{{"position", "employee"}}, {"support"});
    l2_ = be_.register_object("printer", {}, Level::kL2, {},
                              {{"position=='employee'", "staff", {"print"}}});
  }

  ObjectEngine object(AdmissionParams admission = {},
                      std::size_t session_capacity = 128) {
    ObjectEngineConfig cfg;
    cfg.creds = l2_;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = 72;
    cfg.admission = admission;
    cfg.session_capacity = session_capacity;
    return ObjectEngine(std::move(cfg));
  }

  Backend be_;
  backend::SubjectCredentials subject_;
  backend::ObjectCredentials l2_;
};

TEST_F(FlooderFixture, PayloadStreamIsSeedDeterministic) {
  Flooder a(Flooder::Kind::kQue1Storm, 31);
  Flooder b(Flooder::Kind::kQue1Storm, 31);
  Flooder c(Flooder::Kind::kQue1Storm, 32);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    const Bytes pa = a.next();
    any_diff = any_diff || pa != c.next();
    EXPECT_EQ(pa, b.next());
  }
  EXPECT_TRUE(any_diff);  // distinct seeds give distinct storms
}

TEST_F(FlooderFixture, Que1StormCannotOutgrowSessionTable) {
  // No admission control at all: the storm is served in full, so the
  // session table is the last line of defense. Capacity-LRU must hold it
  // at the cap, and the TTL sweep must clear the garbage afterwards.
  auto o = object({}, /*session_capacity=*/16);
  Flooder storm(Flooder::Kind::kQue1Storm, 5);
  const auto out = storm.run_against(o, 100, /*tick_ms=*/10.0, be_.now());
  EXPECT_EQ(out.sent, 100u);
  EXPECT_EQ(out.served, 100u);  // unprotected: every query costs crypto
  EXPECT_LE(o.open_sessions(), 16u);
  EXPECT_GE(o.stats().evictions, 100u - 16u);
  o.advance_clock(100'000.0);  // past session_ttl_ms
  EXPECT_EQ(o.open_sessions(), 0u);
}

TEST_F(FlooderFixture, AdmissionShedsTheStormCheaply) {
  AdmissionParams adm;
  adm.enabled = true;  // paper-sized defaults: peer 5/s, burst 4
  auto protected_o = object(adm);
  auto naked_o = object();
  Flooder storm_a(Flooder::Kind::kQue1Storm, 5);
  Flooder storm_b(Flooder::Kind::kQue1Storm, 5);
  // 200 queries over 2 virtual seconds — a 100/s storm.
  const auto shielded =
      storm_a.run_against(protected_o, 200, 10.0, be_.now());
  const auto unshielded = storm_b.run_against(naked_o, 200, 10.0, be_.now());
  EXPECT_EQ(unshielded.served, 200u);
  // Token bucket: the burst plus ~2 s of refill get through, the rest is
  // shed before any crypto happens.
  EXPECT_GT(shielded.shed, 150u);
  EXPECT_LT(shielded.served, 30u);
  EXPECT_EQ(shielded.rejected, 0u);
  EXPECT_LT(shielded.victim_compute_ms, unshielded.victim_compute_ms / 4);
}

TEST_F(FlooderFixture, GarbageFloodDiesInCheapChecks) {
  AdmissionParams adm;
  adm.enabled = true;
  auto o = object(adm);
  Flooder junk(Flooder::Kind::kGarbageQue2, 5);
  const auto out = junk.run_against(o, 100, 10.0, be_.now());
  EXPECT_EQ(out.served, 0u);
  EXPECT_EQ(out.rejected, 100u);  // malformed, not shed: a format verdict
  EXPECT_EQ(out.shed, 0u);        // garbage never reaches the buckets
  EXPECT_EQ(out.victim_compute_ms, 0.0);
  EXPECT_EQ(o.open_sessions(), 0u);
}

TEST_F(FlooderFixture, ReplayFlooderResendsTheCapturedQue2) {
  core::SubjectEngineConfig scfg;
  scfg.creds = subject_;
  scfg.admin_pub = be_.admin_public_key();
  scfg.seed = 71;
  core::SubjectEngine s(std::move(scfg));
  auto o = object();
  const auto trace = capture_exchange(s, o, be_.now());
  ASSERT_TRUE(trace.has_value());
  Flooder replay = replay_flooder(*trace, 5);
  EXPECT_EQ(replay.next(), trace->que2);
  // Replaying the completed exchange's QUE2 at its victim: every copy is
  // answered from the RES2 cache — correct, idempotent, and free.
  const auto out = replay.run_against(o, 50, 10.0, be_.now());
  EXPECT_EQ(out.sent, 50u);
  EXPECT_EQ(out.victim_compute_ms, 0.0);
  EXPECT_GE(o.stats().replays_detected, 50u);
}

}  // namespace
}  // namespace argus::attacks
