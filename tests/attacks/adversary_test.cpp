// §VII security analysis as executable tests: Cases 1-9 with real key
// material. Every attack must fail against v3.0; the ablations (padding
// or timing equalisation off) show the attacks would otherwise succeed.
#include <gtest/gtest.h>

#include "attacks/adversary.hpp"

namespace argus::attacks {
namespace {

using backend::AttributeMap;
using backend::Backend;
using backend::Level;
using core::ObjectEngineConfig;
using core::SubjectEngineConfig;

class AttackFixture : public ::testing::Test {
 protected:
  AttackFixture() : be_(crypto::Strength::b128, 555) {
    fellow_ = be_.register_subject(
        "fellow", AttributeMap{{"position", "employee"}}, {"support"});
    plain_ = be_.register_subject("plain",
                                  AttributeMap{{"position", "employee"}});
    l2_ = be_.register_object("printer", {}, Level::kL2, {},
                              {{"position=='employee'", "staff", {"print"}}});
    // Covert variant with a deliberately larger profile (more services) so
    // that, WITHOUT padding, sizes leak.
    l3_ = be_.register_object(
        "kiosk", {}, Level::kL3, {},
        {{"position=='employee'", "staff", {"browse"}}},
        {{"support", "covert",
          {"browse", "counseling resources", "financial aid directory",
           "peer support meetup calendar", "emergency contact lines",
           "accessibility services catalog", "confidential appointment "
           "booking"}}});
  }

  SubjectEngine subject(const backend::SubjectCredentials& c) {
    SubjectEngineConfig cfg;
    cfg.creds = c;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = 71;
    return SubjectEngine(std::move(cfg));
  }
  ObjectEngine object(const backend::ObjectCredentials& c) {
    ObjectEngineConfig cfg;
    cfg.creds = c;
    cfg.admin_pub = be_.admin_public_key();
    cfg.seed = 72;
    return ObjectEngine(std::move(cfg));
  }

  Backend be_;
  backend::SubjectCredentials fellow_, plain_;
  backend::ObjectCredentials l2_, l3_;
};

TEST_F(AttackFixture, Case1EavesdropperCannotReadServiceInfo) {
  auto s = subject(plain_);
  auto o = object(l2_);
  const auto trace = capture_exchange(s, o, be_.now());
  ASSERT_TRUE(trace.has_value());
  // Candidate keys an eavesdropper might assemble: zeros, the group keys
  // (stolen alone, without K2), random guesses.
  std::vector<Bytes> candidates{Bytes(32, 0), fellow_.group_keys[0].key,
                                plain_.group_keys[0].key};
  auto rng = crypto::make_rng(1, "guesses");
  for (int i = 0; i < 50; ++i) candidates.push_back(rng.generate(32));
  EXPECT_EQ(try_open_res2(*trace, candidates), 0u);
}

TEST_F(AttackFixture, Case2SubjectImpostorRejected) {
  auto o = object(l2_);
  EXPECT_FALSE(subject_impostor_succeeds(
      o, be_.admin_public_key(), "plain",
      AttributeMap{{"position", "employee"}}, crypto::Strength::b128,
      be_.now(), 81));
  EXPECT_GT(o.stats().drops, 0u);
}

TEST_F(AttackFixture, Case2ObjectImpostorRejected) {
  auto victim = subject(plain_);
  EXPECT_FALSE(object_impostor_succeeds(victim, "printer",
                                        crypto::Strength::b128, be_.now(),
                                        82));
  EXPECT_TRUE(victim.discovered().empty());
}

TEST_F(AttackFixture, Case3EavesdropperCannotReadLevel3ServiceInfo) {
  auto s = subject(fellow_);
  auto o = object(l3_);
  const auto trace = capture_exchange(s, o, be_.now());
  ASSERT_TRUE(trace.has_value());
  // Even the correct group key alone (no K2 -> no K3) opens nothing.
  EXPECT_EQ(try_open_res2(*trace, {fellow_.group_keys[0].key}), 0u);
}

TEST_F(AttackFixture, Case4ImpostorCannotReachLevel3) {
  auto o = object(l3_);
  EXPECT_FALSE(subject_impostor_succeeds(
      o, be_.admin_public_key(), "fellow",
      AttributeMap{{"position", "employee"}}, crypto::Strength::b128,
      be_.now(), 83));
  EXPECT_EQ(o.stats().fellows_confirmed, 0u);
}

TEST_F(AttackFixture, Case5ReplayedQue2Rejected) {
  auto s = subject(plain_);
  auto o = object(l2_);
  const auto trace = capture_exchange(s, o, be_.now());
  ASSERT_TRUE(trace.has_value());
  EXPECT_FALSE(replay_que2_succeeds(o, *trace, be_.now()));
}

TEST_F(AttackFixture, Case5ReplayedQue1Rejected) {
  auto s = subject(plain_);
  auto o = object(l2_);
  const auto trace = capture_exchange(s, o, be_.now());
  ASSERT_TRUE(trace.has_value());
  EXPECT_FALSE(o.handle(trace->que1, be_.now()).has_value());
  EXPECT_GT(o.stats().replays_detected, 0u);
}

TEST_F(AttackFixture, Case7PaddingDefeatsSizeDistinguisher) {
  const auto res = size_distinguisher(fellow_, plain_, l3_,
                                      be_.admin_public_key(), be_.now(),
                                      /*pad_res2=*/true, 40, 91);
  EXPECT_LT(res.advantage, 0.3);  // statistically indistinct at 40 trials
}

TEST_F(AttackFixture, Case7AblationNoPaddingLeaksCovertDiscovery) {
  const auto res = size_distinguisher(fellow_, plain_, l3_,
                                      be_.admin_public_key(), be_.now(),
                                      /*pad_res2=*/false, 40, 92);
  EXPECT_GT(res.advantage, 0.9);  // sizes differ -> near-perfect attack
}

TEST_F(AttackFixture, Case9TimingEqualizationClosesTheGap) {
  const auto eq = timing_probe(plain_, l2_, l3_, be_.admin_public_key(),
                               be_.now(), /*equalize=*/true, 95);
  EXPECT_NEAR(eq.gap_ms(), 0.0, 1e-9);
  const auto raw = timing_probe(plain_, l2_, l3_, be_.admin_public_key(),
                                be_.now(), /*equalize=*/false, 96);
  EXPECT_GT(raw.gap_ms(), 0.0);           // the leak exists...
  EXPECT_LT(raw.gap_ms(), 0.2);           // ...but is < 0.1-ish ms (§VII)
}

TEST_F(AttackFixture, InternalAttackerWithValidKeyStillFailsLevel3) {
  // Case 6/8: an insider (valid registered subject, no group key) cannot
  // confirm fellowship or recognize MAC_{O,3}.
  auto insider = subject(plain_);
  auto o = object(l3_);
  const auto trace = capture_exchange(insider, o, be_.now());
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(o.stats().fellows_confirmed, 0u);
  // She got the Level 2 cover face, believing the kiosk is Level 2.
  ASSERT_FALSE(insider.discovered().empty());
  EXPECT_EQ(insider.discovered().front().level, 2);
}

}  // namespace
}  // namespace argus::attacks
