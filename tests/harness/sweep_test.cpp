// Sweep-harness regression tests: thread-count invariance (the harness's
// core contract), golden-digest semantics, grid expansion order, and the
// declarative spec parser.
#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/spec.hpp"

namespace argus::harness {
namespace {

GridSpec small_grid() {
  GridSpec spec;
  spec.levels = {1, 2, 3};
  spec.objects = {2, 4};
  spec.drop = {0.0, 0.10};
  spec.seeds = {5};
  return spec;
}

TEST(SweepTest, GridExpansionOrderIsFixed) {
  GridSpec spec;
  spec.levels = {1, 2};
  spec.objects = {3, 6};
  spec.drop = {0.0, 0.5};
  const auto grid = expand(spec);
  ASSERT_EQ(grid.size(), 8u);
  // Innermost axis is level, then objects, then drop.
  EXPECT_EQ(grid[0].level, 1);
  EXPECT_EQ(grid[1].level, 2);
  EXPECT_EQ(grid[0].objects, 3u);
  EXPECT_EQ(grid[2].objects, 6u);
  EXPECT_EQ(grid[0].drop, 0.0);
  EXPECT_EQ(grid[4].drop, 0.5);
  EXPECT_EQ(point_label(grid[5]), "L2 n=3 hops=1 drop=0.5 seed=17");
}

TEST(SweepTest, RingLayoutPlacesFivePerRing) {
  SweepPoint p;
  p.level = 1;
  p.objects = 12;
  p.per_ring = 5;
  const auto sc = make_scenario(p);
  ASSERT_EQ(sc.objects.size(), 12u);
  EXPECT_EQ(sc.objects[0].hops, 1u);
  EXPECT_EQ(sc.objects[4].hops, 1u);
  EXPECT_EQ(sc.objects[5].hops, 2u);
  EXPECT_EQ(sc.objects[11].hops, 3u);
  EXPECT_EQ(point_label(p), "L1 n=12 rings=5 drop=0 seed=17");
}

// The tentpole contract: a sweep run on one thread and on several threads
// produces identical golden digests and identical DiscoveryReport fields,
// clean and lossy cells alike.
TEST(SweepTest, DeterministicAcrossThreadCounts) {
  const auto grid = expand(small_grid());
  const auto serial = SweepRunner({.threads = 1}).run(grid);
  const auto parallel = SweepRunner({.threads = 4}).run(grid);
  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(serial[i].label);
    EXPECT_EQ(serial[i].label, parallel[i].label);
    EXPECT_EQ(serial[i].digest, parallel[i].digest);
    const auto& a = serial[i].report();
    const auto& b = parallel[i].report();
    EXPECT_EQ(a.total_ms, b.total_ms);
    EXPECT_EQ(a.services.size(), b.services.size());
    EXPECT_EQ(a.net_stats.messages, b.net_stats.messages);
    EXPECT_EQ(a.net_stats.bytes, b.net_stats.bytes);
    EXPECT_EQ(a.net_stats.dropped, b.net_stats.dropped);
    EXPECT_EQ(a.offered_messages, b.offered_messages);
    EXPECT_EQ(a.offered_bytes, b.offered_bytes);
    EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
    EXPECT_EQ(a.que1_retransmits, b.que1_retransmits);
    EXPECT_EQ(a.que2_retransmits, b.que2_retransmits);
    EXPECT_EQ(a.subject_compute_ms, b.subject_compute_ms);
    EXPECT_EQ(a.object_compute_ms, b.object_compute_ms);
    EXPECT_EQ(a.bytes_by_msg, b.bytes_by_msg);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t j = 0; j < a.timeline.size(); ++j) {
      EXPECT_EQ(a.timeline[j].object_id, b.timeline[j].object_id);
      EXPECT_EQ(a.timeline[j].at_ms, b.timeline[j].at_ms);
    }
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t j = 0; j < a.outcomes.size(); ++j) {
      EXPECT_EQ(a.outcomes[j].discovered, b.outcomes[j].discovered);
      EXPECT_EQ(a.outcomes[j].que2_retransmits, b.outcomes[j].que2_retransmits);
    }
  }
}

TEST(SweepTest, JsonlOutputIsThreadInvariant) {
  const auto grid = expand(small_grid());
  const auto serial = SweepRunner({.threads = 1}).run(grid);
  const auto parallel = SweepRunner({.threads = 3}).run(grid);
  std::ostringstream a, b;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    write_jsonl_line(a, grid[i], serial[i]);
    write_jsonl_line(b, grid[i], parallel[i]);
  }
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"digest\":\""), std::string::npos);
}

TEST(SweepTest, DigestSeparatesSeedsAndRepeatsExactly) {
  SweepPoint p;
  p.level = 2;
  p.objects = 3;
  const SweepRunner runner({.threads = 1});
  const auto first = runner.run({p});
  const auto again = runner.run({p});
  EXPECT_EQ(first[0].digest, again[0].digest);  // replay: bit-identical
  SweepPoint other = p;
  other.seed = 99;
  const auto reseeded = runner.run({other});
  EXPECT_NE(first[0].digest, reseeded[0].digest);
  // Digests are 64 hex chars of SHA-256.
  EXPECT_EQ(first[0].digest.size(), 64u);
}

TEST(SweepTest, MultiScenarioRunKeepsOneTracePerRun) {
  SweepPoint p;
  p.level = 3;
  p.objects = 2;
  const SweepRunner runner({.threads = 2, .keep_traces = true});
  const auto results = runner.run(2, [&p](std::size_t i) {
    RunSpec spec;
    spec.label = "pair-" + std::to_string(i);
    spec.scenarios.push_back(make_scenario(p));
    spec.scenarios.push_back(make_scenario(p));
    return spec;
  });
  ASSERT_EQ(results.size(), 2u);
  for (const auto& res : results) {
    EXPECT_EQ(res.reports.size(), 2u);
    ASSERT_TRUE(res.trace.has_value());
    EXPECT_TRUE(res.trace->well_formed());
    EXPECT_GT(res.trace->size(), 0u);
  }
  // Identical specs on different workers: identical digests.
  EXPECT_EQ(results[0].digest, results[1].digest);
}

TEST(SweepTest, TracesDroppedUnlessRequested) {
  SweepPoint p;
  p.level = 1;
  const auto results = SweepRunner({.threads = 1}).run({p});
  EXPECT_FALSE(results[0].trace.has_value());
}

// Acceptance gate for the chaos layer: a grid with every fault axis
// armed must still be a pure function of the grid — identical digests,
// outcome verdicts and fault accounting on 1 and N threads.
TEST(SweepTest, ChaosGridIsDeterministicAcrossThreadCounts) {
  GridSpec spec;
  spec.levels = {2, 3};
  spec.objects = {6};
  spec.crash = {0.0, 0.4};
  spec.zombie = {0.2};
  spec.byzantine = {0.2};
  spec.reboot_ms = 900;
  spec.seeds = {17};
  const auto grid = expand(spec);
  ASSERT_EQ(grid.size(), 4u);
  const auto serial = SweepRunner({.threads = 1}).run(grid);
  const auto parallel = SweepRunner({.threads = 4}).run(grid);
  bool any_faults = false;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(serial[i].label);
    EXPECT_EQ(serial[i].digest, parallel[i].digest);
    const auto& a = serial[i].report();
    const auto& b = parallel[i].report();
    EXPECT_EQ(a.fault_counts, b.fault_counts);
    EXPECT_EQ(a.net_stats.fault_dropped, b.net_stats.fault_dropped);
    any_faults = any_faults || !a.fault_counts.empty();
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t j = 0; j < a.outcomes.size(); ++j) {
      EXPECT_EQ(a.outcomes[j].discovered, b.outcomes[j].discovered);
      EXPECT_EQ(a.outcomes[j].reason, b.outcomes[j].reason);
      EXPECT_EQ(a.outcomes[j].rejects, b.outcomes[j].rejects);
      // Terminal verdict for every object, faults or not.
      EXPECT_TRUE(a.outcomes[j].discovered ||
                  a.outcomes[j].reason != core::FailReason::kNone);
    }
  }
  EXPECT_TRUE(any_faults);  // the pinned seed must exercise the chaos path
}

TEST(SweepTest, FaultAxesAppearOnlyInChaosCells) {
  // Fault-free labels and JSONL must be byte-stable relative to pre-chaos
  // builds: the fault axes only surface when armed.
  SweepPoint clean;
  clean.level = 2;
  clean.objects = 3;
  EXPECT_EQ(point_label(clean), "L2 n=3 hops=1 drop=0 seed=17");
  const auto clean_res = SweepRunner({.threads = 1}).run({clean});
  std::ostringstream clean_line;
  write_jsonl_line(clean_line, clean, clean_res[0]);
  EXPECT_EQ(clean_line.str().find("crash"), std::string::npos);
  EXPECT_EQ(clean_line.str().find("fault"), std::string::npos);

  SweepPoint chaos = clean;
  chaos.crash = 0.5;
  chaos.reboot_ms = 900;
  chaos.zombie = 0.1;
  EXPECT_EQ(point_label(chaos),
            "L2 n=3 hops=1 drop=0 seed=17 crash=0.5 reboot=900 zombie=0.1");
  const auto chaos_res = SweepRunner({.threads = 1}).run({chaos});
  std::ostringstream chaos_line;
  write_jsonl_line(chaos_line, chaos, chaos_res[0]);
  EXPECT_NE(chaos_line.str().find("\"crash\":0.5"), std::string::npos);
  EXPECT_NE(chaos_line.str().find("\"reboot\":900"), std::string::npos);
  EXPECT_NE(chaos_line.str().find("\"fault_dropped\":"), std::string::npos);
}

TEST(SweepTest, UnarmedFaultPlanLeavesDigestUnchanged) {
  // Setting the chaos axes to their defaults must be indistinguishable
  // from never having had them: same scenario, same digest.
  SweepPoint p;
  p.level = 3;
  p.objects = 4;
  SweepPoint zeroed = p;
  zeroed.crash = 0.0;
  zeroed.straggle = 0.0;
  zeroed.zombie = 0.0;
  zeroed.byzantine = 0.0;
  zeroed.reboot_ms = -1.0;
  const SweepRunner runner({.threads = 1});
  const auto a = runner.run({p});
  const auto b = runner.run({zeroed});
  EXPECT_EQ(a[0].digest, b[0].digest);
  EXPECT_TRUE(a[0].report().fault_counts.empty());
}

TEST(SweepTest, FloodAxesAppearOnlyInFloodCells) {
  // Same byte-stability contract as the chaos axes: flood-free cells keep
  // their pre-overload labels and JSONL, armed cells surface the axes.
  SweepPoint clean;
  clean.level = 2;
  clean.objects = 3;
  EXPECT_EQ(point_label(clean), "L2 n=3 hops=1 drop=0 seed=17");
  const auto clean_res = SweepRunner({.threads = 1}).run({clean});
  std::ostringstream clean_line;
  write_jsonl_line(clean_line, clean, clean_res[0]);
  EXPECT_EQ(clean_line.str().find("flood"), std::string::npos);
  EXPECT_EQ(clean_line.str().find("qdepth"), std::string::npos);

  SweepPoint stormy = clean;
  stormy.flood_rate = 200;
  stormy.queue_depth = 8;
  EXPECT_EQ(point_label(stormy),
            "L2 n=3 hops=1 drop=0 seed=17 flood=200 qdepth=8");
  const auto stormy_res = SweepRunner({.threads = 1}).run({stormy});
  std::ostringstream stormy_line;
  write_jsonl_line(stormy_line, stormy, stormy_res[0]);
  EXPECT_NE(stormy_line.str().find("\"flood\":200"), std::string::npos);
  EXPECT_NE(stormy_line.str().find("\"qdepth\":8"), std::string::npos);
  EXPECT_NE(stormy_line.str().find("\"rate_limited\":"), std::string::npos);
  EXPECT_NE(stormy_line.str().find("\"queue_rejected\":"), std::string::npos);
}

TEST(SweepTest, FloodCellsAreThreadInvariant) {
  GridSpec spec;
  spec.levels = {2, 3};
  spec.objects = {4};
  spec.flood_rate = {200.0};
  spec.queue_depth = {8};
  const auto grid = expand(spec);
  const auto serial = SweepRunner({.threads = 1}).run(grid);
  const auto parallel = SweepRunner({.threads = 3}).run(grid);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].digest, parallel[i].digest) << serial[i].label;
    // The shed path runs on the object engines' deterministic virtual
    // clock, so the counts themselves must be shard-invariant too.
    EXPECT_EQ(serial[i].report().rate_limited,
              parallel[i].report().rate_limited);
  }
}

TEST(SpecTest, ParsesAxesCommentsAndRings) {
  std::istringstream in(
      "# fig6g-like\n"
      "levels  = 1,2,3\n"
      "objects = 5, 10\n"
      "rings   = 5   # ring layout\n"
      "drop    = 0,0.25\n"
      "seeds   = 1,2\n");
  const auto spec = parse_grid_spec(in);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->levels, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(spec->objects, (std::vector<std::size_t>{5, 10}));
  EXPECT_EQ(spec->per_ring, 5u);
  EXPECT_EQ(spec->drop, (std::vector<double>{0.0, 0.25}));
  EXPECT_EQ(spec->seeds, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(expand(*spec).size(), 3u * 2u * 2u * 2u);
}

TEST(SpecTest, RejectsMalformedInput) {
  std::string error;
  {
    std::istringstream in("levels = 0\n");  // out of range
    EXPECT_FALSE(parse_grid_spec(in, &error).has_value());
    EXPECT_NE(error.find("levels"), std::string::npos);
  }
  {
    std::istringstream in("drop = 1.5\n");  // not a probability
    EXPECT_FALSE(parse_grid_spec(in, &error).has_value());
  }
  {
    std::istringstream in("bogus = 1\n");
    EXPECT_FALSE(parse_grid_spec(in, &error).has_value());
    EXPECT_NE(error.find("bogus"), std::string::npos);
  }
  {
    std::istringstream in("no equals sign\n");
    EXPECT_FALSE(parse_grid_spec(in, &error).has_value());
  }
}

TEST(SpecTest, BuiltinGridsCoverTheFigures) {
  const auto& grids = builtin_grids();
  for (const char* name :
       {"fig6e", "fig6f", "fig6g", "fig6h", "loss", "churn", "flood"}) {
    ASSERT_TRUE(grids.contains(name)) << name;
    EXPECT_FALSE(expand(grids.at(name)).empty()) << name;
  }
  EXPECT_EQ(expand(grids.at("fig6g")).size(), 12u);
  EXPECT_EQ(grids.at("fig6g").per_ring, 5u);
  EXPECT_EQ(expand(grids.at("churn")).size(), 18u);
  EXPECT_EQ(grids.at("churn").reboot_ms, 900.0);
  EXPECT_EQ(expand(grids.at("flood")).size(), 12u);
  EXPECT_EQ(grids.at("flood").queue_depth, (std::vector<std::size_t>{16}));
}

TEST(SpecTest, ParsesFloodAxes) {
  std::istringstream in(
      "levels = 2\n"
      "objects = 4\n"
      "flood = 0, 200\n"
      "queue = 16\n");
  const auto spec = parse_grid_spec(in);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->flood_rate, (std::vector<double>{0.0, 200.0}));
  EXPECT_EQ(spec->queue_depth, (std::vector<std::size_t>{16}));
  EXPECT_EQ(expand(*spec).size(), 2u);

  std::string error;
  std::istringstream bad("flood = -5\n");
  EXPECT_FALSE(parse_grid_spec(bad, &error).has_value());
  EXPECT_NE(error.find("flood"), std::string::npos);
}

TEST(SpecTest, ParsesChaosAxes) {
  std::istringstream in(
      "levels    = 2\n"
      "objects   = 8\n"
      "crash     = 0, 0.25, 0.5\n"
      "straggle  = 0.1\n"
      "zombie    = 0.2\n"
      "byzantine = 0.3\n"
      "reboot    = 750\n");
  const auto spec = parse_grid_spec(in);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->crash, (std::vector<double>{0.0, 0.25, 0.5}));
  EXPECT_EQ(spec->straggle, (std::vector<double>{0.1}));
  EXPECT_EQ(spec->zombie, (std::vector<double>{0.2}));
  EXPECT_EQ(spec->byzantine, (std::vector<double>{0.3}));
  EXPECT_EQ(spec->reboot_ms, 750.0);
  EXPECT_EQ(expand(*spec).size(), 3u);

  std::string error;
  std::istringstream bad("crash = 1.5\n");  // not a probability
  EXPECT_FALSE(parse_grid_spec(bad, &error).has_value());
  EXPECT_NE(error.find("crash"), std::string::npos);
}


// --------------------------------------------------------------------------
// Wall-clock profiling must be invisible to virtual time, and metric
// rollups must be thread-count invariant.

TEST(SweepProfilerTest, ProfilingDoesNotChangeGoldenDigests) {
  GridSpec spec;
  spec.levels = {1, 2, 3};
  spec.objects = {4};
  const auto grid = expand(spec);

  const auto plain = SweepRunner({.threads = 2}).run(grid);

  obs::prof::Profiler profiler;
  SweepRunner::Options opts;
  opts.threads = 2;
  opts.profiler = &profiler;
  const auto profiled = SweepRunner(opts).run(grid);

  ASSERT_EQ(plain.size(), profiled.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].digest, profiled[i].digest) << plain[i].label;
  }
  // ... and the profiler actually saw the runs, keyed by grid lane.
  EXPECT_FALSE(profiler.empty());
  const auto by_label = profiler.by_label();
  ASSERT_EQ(by_label.count("harness.run"), 1u);
  EXPECT_EQ(by_label.at("harness.run").count, grid.size());
  const auto merged = profiler.merged_events();
  for (const auto& ev : merged) {
    EXPECT_GE(ev.lane, 1u);               // lane = grid index + 1
    EXPECT_LE(ev.lane, grid.size());
  }
}

TEST(SweepRollupTest, KeepMetricsRetainsPerRunRegistries) {
  GridSpec spec;
  spec.levels = {2};
  spec.objects = {2, 3};
  const auto grid = expand(spec);
  const auto without = SweepRunner({.threads = 1}).run(grid);
  for (const auto& res : without) EXPECT_FALSE(res.metrics.has_value());

  SweepRunner::Options opts;
  opts.threads = 1;
  opts.keep_metrics = true;
  const auto with = SweepRunner(opts).run(grid);
  for (const auto& res : with) {
    ASSERT_TRUE(res.metrics.has_value());
    EXPECT_FALSE(res.metrics->counters().empty());
  }
  // Digests are independent of metric retention.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(without[i].digest, with[i].digest);
  }
}

TEST(SweepRollupTest, RollupIsThreadCountInvariant) {
  GridSpec spec;
  spec.levels = {1, 2, 3};
  spec.objects = {3};
  spec.drop = {0.0, 0.1};
  const auto grid = expand(spec);

  SweepRunner::Options serial_opts;
  serial_opts.threads = 1;
  serial_opts.keep_metrics = true;
  SweepRunner::Options parallel_opts = serial_opts;
  parallel_opts.threads = 4;

  const auto serial = SweepRunner(serial_opts).run(grid);
  const auto parallel = SweepRunner(parallel_opts).run(grid);
  const auto rollup_a = rollup_metrics(serial);
  const auto rollup_b = rollup_metrics(parallel);
  // render() covers every counter and histogram quantile, so one string
  // compare proves the rollup is a pure function of the grid.
  EXPECT_EQ(rollup_a.render(), rollup_b.render());

  std::ostringstream line_a, line_b;
  write_rollup_line(line_a, rollup_a, serial.size());
  write_rollup_line(line_b, rollup_b, parallel.size());
  EXPECT_EQ(line_a.str(), line_b.str());
  EXPECT_NE(line_a.str().find("\"rollup\":true"), std::string::npos);
  EXPECT_NE(line_a.str().find("\"runs\":6"), std::string::npos);
}

TEST(SweepPartitionTest, ShardDigestIsThreadCountInvariant) {
  // The scale contract: one giant topology sharded across the pool must
  // produce bit-identical shard digests, combined digest and combined
  // report whether the shards ran on 1 thread or 4.
  SweepPoint point;
  point.level = 1;
  point.objects = 24;
  point.per_ring = 8;
  SweepRunner::Options serial_opts;
  serial_opts.threads = 1;
  SweepRunner::Options parallel_opts;
  parallel_opts.threads = 4;
  const auto serial = SweepRunner(serial_opts).run_partitioned(point, 6);
  const auto parallel = SweepRunner(parallel_opts).run_partitioned(point, 6);
  ASSERT_EQ(serial.shards.size(), 6u);
  ASSERT_EQ(parallel.shards.size(), 6u);
  for (std::size_t i = 0; i < serial.shards.size(); ++i) {
    EXPECT_EQ(serial.shards[i].digest, parallel.shards[i].digest) << i;
  }
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(report_json(serial.combined), report_json(parallel.combined));
}

TEST(SweepPartitionTest, CombinedReportConservesFleet) {
  // The merge must lose nothing: every object of the conceptual fleet is
  // discovered exactly once, traffic totals are the shard sums, and the
  // campus completion time is the slowest shard's.
  SweepPoint point;
  point.level = 1;
  point.objects = 10;
  point.per_ring = 4;
  SweepRunner::Options opts;
  opts.threads = 1;
  const auto part = SweepRunner(opts).run_partitioned(point, 3);
  ASSERT_EQ(part.shards.size(), 3u);
  // 10 objects over 3 shards: 4 + 3 + 3.
  EXPECT_EQ(part.shards[0].report().services.size(), 4u);
  EXPECT_EQ(part.shards[1].report().services.size(), 3u);
  EXPECT_EQ(part.shards[2].report().services.size(), 3u);
  EXPECT_EQ(part.combined.services.size(), 10u);
  double max_ms = 0;
  std::uint64_t messages = 0;
  for (const auto& shard : part.shards) {
    max_ms = std::max(max_ms, shard.report().total_ms);
    messages += shard.report().net_stats.messages;
  }
  EXPECT_EQ(part.combined.total_ms, max_ms);
  EXPECT_EQ(part.combined.net_stats.messages, messages);
  EXPECT_EQ(part.combined.delivery_ratio, 1.0);  // clean channel
}

TEST(SweepPartitionTest, SingleShardMatchesPlainRun) {
  // A 1-shard partition is the plain run: same seed, same scenario, same
  // digest — the partitioning layer adds nothing to the simulation.
  SweepPoint point;
  point.level = 2;
  point.objects = 4;
  SweepRunner::Options opts;
  opts.threads = 1;
  const auto part = SweepRunner(opts).run_partitioned(point, 1);
  const auto plain = SweepRunner(opts).run({point});
  ASSERT_EQ(part.shards.size(), 1u);
  EXPECT_EQ(part.shards[0].digest, plain[0].digest);
  EXPECT_EQ(part.combined.services.size(), 4u);
}

TEST(SweepPartitionTest, ShardCountClampsAndValidates) {
  SweepPoint point;
  point.level = 1;
  point.objects = 2;
  SweepRunner::Options opts;
  opts.threads = 1;
  EXPECT_THROW((void)SweepRunner(opts).run_partitioned(point, 0),
               std::invalid_argument);
  // More shards than objects: clamped so no shard simulates zero objects.
  const auto part = SweepRunner(opts).run_partitioned(point, 8);
  EXPECT_EQ(part.shards.size(), 2u);
  EXPECT_EQ(part.combined.services.size(), 2u);
}

TEST(SweepRollupTest, RollupAggregatesAcrossRuns) {
  GridSpec spec;
  spec.levels = {2};
  spec.objects = {2};
  spec.seeds = {17, 18};
  const auto grid = expand(spec);
  SweepRunner::Options opts;
  opts.threads = 1;
  opts.keep_metrics = true;
  const auto results = SweepRunner(opts).run(grid);
  const auto rollup = rollup_metrics(results);

  std::uint64_t expected = 0;
  for (const auto& res : results) {
    expected += res.metrics->find_counter("net.msg.count.QUE1")->value();
  }
  ASSERT_NE(rollup.find_counter("net.msg.count.QUE1"), nullptr);
  EXPECT_EQ(rollup.find_counter("net.msg.count.QUE1")->value(), expected);
  EXPECT_GT(expected, 0u);
}

}  // namespace
}  // namespace argus::harness
