// The paper's §IV-A Level 3 story: student S with a learning disability
// registered his diagnosis with the university and was placed in a secret
// group. The campus magazine machine serves support flyers to fellows,
// hidden inside regular magazines — other students cannot tell that
// Level 3 discovery is happening at all.
//
//   $ ./build/examples/campus_covert
#include <cstdio>

#include "argus/object_engine.hpp"
#include "argus/subject_engine.hpp"

using namespace argus;
using backend::AttributeMap;
using backend::Level;

namespace {

core::SubjectEngine make_subject(const backend::Backend& be,
                                 const backend::SubjectCredentials& creds,
                                 std::uint64_t seed) {
  core::SubjectEngineConfig cfg;
  cfg.creds = creds;
  cfg.admin_pub = be.admin_public_key();
  cfg.seed = seed;
  return core::SubjectEngine(std::move(cfg));
}

void run_discovery(const backend::Backend& be, const char* who,
                   core::SubjectEngine& subject, core::ObjectEngine& machine) {
  const Bytes que1 = subject.start_round();
  const auto res1 = machine.handle(que1, be.now());
  const auto que2 = subject.handle(*res1, be.now());
  const auto res2 = machine.handle(*que2, be.now());
  (void)subject.handle(*res2, be.now());

  const auto& svc = subject.discovered().back();
  std::printf("%s discovers '%s' (sees it as Level %d):\n", who,
              svc.object_id.c_str(), svc.level);
  for (const auto& s : svc.services) std::printf("    - %s\n", s.c_str());
  std::printf("  QUE2 sent: %zu bytes, RES2 received: %zu bytes\n\n",
              que2->size(), res2->size());
}

}  // namespace

int main() {
  backend::Backend be(crypto::Strength::b128, 7);

  // Student S showed his diagnosis to the university out of band; the
  // admin put him in the "learning-disability" secret group. The group
  // membership never appears in his profile or certificate.
  const auto student_s = be.register_subject(
      "student-s", AttributeMap{{"role", "student"}}, {"learning-disability"});
  // Student T has no sensitive attributes — but still receives a
  // cover-up key, so his QUE2s look exactly like S's.
  const auto student_t =
      be.register_subject("student-t", AttributeMap{{"role", "student"}});

  const auto machine_creds = be.register_object(
      "campus-magazine-machine", AttributeMap{{"type", "vending"}},
      Level::kL3,
      {},
      {{"role=='student'", "regular", {"magazines", "newspapers"}}},
      {{"learning-disability", "support",
        {"magazines", "newspapers", "counseling flyers",
         "university policy support", "medical referral contacts"}}});

  core::ObjectEngineConfig ocfg;
  ocfg.creds = machine_creds;
  ocfg.admin_pub = be.admin_public_key();
  core::ObjectEngine machine(std::move(ocfg));

  std::printf("== Campus magazine machine (double-faced Level 3 object) ==\n\n");
  auto s_engine = make_subject(be, student_s, 100);
  auto t_engine = make_subject(be, student_t, 200);
  run_discovery(be, "Student S (secret-group fellow)", s_engine, machine);
  run_discovery(be, "Student T (ordinary student)   ", t_engine, machine);

  std::printf(
      "Both students sent byte-identical QUE2 structures and received\n"
      "equal-length RES2s; machine stats: %llu fellows confirmed out of\n"
      "%llu discoveries. Only S — and nobody watching the radio — knows\n"
      "the machine has a Level 3 face.\n",
      static_cast<unsigned long long>(machine.stats().fellows_confirmed),
      static_cast<unsigned long long>(machine.stats().que2_handled));
  return 0;
}
