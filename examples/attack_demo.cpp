// Security analysis demo: run the §VII attacks (eavesdropping,
// impersonation, replay, distinguishing, timing) against live engines and
// watch each one fail — plus the ablations showing what the v3.0
// countermeasures actually buy.
//
//   $ ./build/examples/attack_demo
#include <cstdio>

#include "attacks/adversary.hpp"
#include "backend/registry.hpp"
#include "argus/discovery.hpp"
#include "obs/audit.hpp"

using namespace argus;
using backend::AttributeMap;
using backend::Level;

int main() {
  backend::Backend be(crypto::Strength::b128, 99);
  const auto fellow = be.register_subject(
      "fellow", AttributeMap{{"position", "employee"}}, {"support"});
  const auto plain = be.register_subject(
      "plain", AttributeMap{{"position", "employee"}});
  const auto printer = be.register_object(
      "printer", {}, Level::kL2, {},
      {{"position=='employee'", "staff", {"print"}}});
  const auto kiosk = be.register_object(
      "kiosk", {}, Level::kL3, {},
      {{"position=='employee'", "staff", {"browse"}}},
      {{"support", "covert",
        {"browse", "counseling resources", "financial aid directory",
         "peer support meetup calendar", "emergency contact lines",
         "accessibility services catalog"}}});

  const auto subject_engine = [&](const backend::SubjectCredentials& c) {
    core::SubjectEngineConfig cfg;
    cfg.creds = c;
    cfg.admin_pub = be.admin_public_key();
    cfg.seed = 1;
    return core::SubjectEngine(std::move(cfg));
  };
  const auto object_engine = [&](const backend::ObjectCredentials& c) {
    core::ObjectEngineConfig cfg;
    cfg.creds = c;
    cfg.admin_pub = be.admin_public_key();
    cfg.seed = 2;
    return core::ObjectEngine(std::move(cfg));
  };

  std::printf("== Case 1/3: eavesdropper vs service-information secrecy ==\n");
  {
    auto s = subject_engine(fellow);
    auto o = object_engine(kiosk);
    const auto trace = attacks::capture_exchange(s, o, be.now());
    std::vector<Bytes> candidates{Bytes(32, 0), fellow.group_keys[0].key};
    auto rng = crypto::make_rng(5, "guesses");
    for (int i = 0; i < 100; ++i) candidates.push_back(rng.generate(32));
    std::printf("  captured %zu-byte RES2; keys that opened it: %zu/102\n\n",
                trace->res2.size(), attacks::try_open_res2(*trace, candidates));
  }

  std::printf("== Case 2: impostors without backend-issued keys ==\n");
  {
    auto o = object_engine(printer);
    const bool s_ok = attacks::subject_impostor_succeeds(
        o, be.admin_public_key(), "plain",
        AttributeMap{{"position", "employee"}}, crypto::Strength::b128,
        be.now(), 11);
    auto victim = subject_engine(plain);
    const bool o_ok = attacks::object_impostor_succeeds(
        victim, "printer", crypto::Strength::b128, be.now(), 12);
    std::printf("  subject impostor got service info: %s\n",
                s_ok ? "YES (BROKEN)" : "no");
    std::printf("  object impostor planted fake info:  %s\n\n",
                o_ok ? "YES (BROKEN)" : "no");
  }

  std::printf("== Case 5: replay ==\n");
  {
    auto s = subject_engine(plain);
    auto o = object_engine(printer);
    const auto trace = attacks::capture_exchange(s, o, be.now());
    std::printf("  replayed QUE1 answered: %s\n",
                o.handle(trace->que1, be.now()) ? "YES (BROKEN)" : "no");
    std::printf("  replayed QUE2 answered: %s\n\n",
                attacks::replay_que2_succeeds(o, *trace, be.now())
                    ? "YES (BROKEN)"
                    : "no");
  }

  std::printf("== Case 7/8: distinguishing covert discovery (40 trials) ==\n");
  for (const bool pad : {true, false}) {
    const auto res = attacks::size_distinguisher(
        fellow, plain, kiosk, be.admin_public_key(), be.now(), pad, 40, 77);
    std::printf("  RES2-size adversary, padding %-3s: advantage %.2f%s\n",
                pad ? "ON" : "OFF", res.advantage,
                pad ? "" : "  <- ablation: padding is load-bearing");
  }
  std::printf("\n== Case 9: timing side channel ==\n");
  for (const bool eq : {true, false}) {
    const auto probe = attacks::timing_probe(
        plain, printer, kiosk, be.admin_public_key(), be.now(), eq, 88);
    std::printf("  L3-vs-L2 response-time gap, equalisation %-3s: %.3f ms\n",
                eq ? "ON" : "OFF", probe.gap_ms());
  }
  std::printf("\n== Trace audit: simulated network, fellow vs cover-up ==\n");
  {
    // The auditor needs a pair that differs only in group membership, so
    // use a decoy subject whose id length matches the fellow's ("nobody"
    // vs "fellow"): the id is embedded in certificates and profiles, and
    // an id-length delta would shift QUE2 sizes for non-protocol reasons.
    const auto nobody = be.register_subject(
        "nobody", AttributeMap{{"position", "employee"}});
    obs::Tracer trace;
    for (const auto* s : {&fellow, &nobody}) {
      core::DiscoveryScenario sc;
      sc.subject = *s;
      sc.admin_pub = be.admin_public_key();
      sc.epoch = be.now();
      sc.objects = {{printer, 1}, {kiosk, 1}};
      sc.seed = 7;
      sc.tracer = &trace;
      (void)core::run_discovery(sc);
    }
    const auto verdict = obs::audit_indistinguishability(trace);
    std::printf("  %s\n", verdict.summary().c_str());
  }

  std::printf("\nAll attacks fail against the full v3.0 protocol.\n");
  return 0;
}
