// Quickstart: register one subject and three objects (one per visibility
// level) at the backend, then run a full discovery round over the
// simulated ground network.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "argus/discovery.hpp"

using namespace argus;
using backend::AttributeMap;
using backend::Level;

int main() {
  // 1. Bootstrap the backend (the enterprise's trust root).
  backend::Backend be(crypto::Strength::b128, /*seed=*/42);

  // 2. Register a subject. Alice is an employee in department X and is
  // enrolled in the "counseling" secret group (a sensitive attribute the
  // backend never writes into any credential).
  const auto alice = be.register_subject(
      "alice", AttributeMap{{"position", "employee"}, {"department", "X"}},
      {"counseling"});

  // 3. Register objects at each level.
  const auto thermometer = be.register_object(
      "aisle-thermometer", AttributeMap{{"type", "thermometer"}},
      Level::kL1, {"read temperature"});

  const auto tv = be.register_object(
      "conference-tv", AttributeMap{{"type", "multimedia"}}, Level::kL2,
      {},
      {{"position=='manager'", "managers", {"play", "configure", "record"}},
       {"position=='employee'", "employees", {"play"}}});

  const auto magazine = be.register_object(
      "lobby-magazine-machine", AttributeMap{{"type", "vending"}},
      Level::kL3, {},
      // Cover face: everyone registered sees a plain magazine machine.
      {{"position!='visitor'", "regular", {"dispense magazines"}}},
      // Covert face: fellows of the "counseling" group get support info.
      {{"counseling", "support",
        {"dispense magazines", "counseling flyers", "support contacts"}}});

  // 4. Run one concurrent 3-in-1 discovery round.
  core::DiscoveryScenario sc;
  sc.subject = alice;
  sc.admin_pub = be.admin_public_key();
  sc.epoch = be.now();
  sc.objects = {{thermometer, 1}, {tv, 1}, {magazine, 1}};
  const auto report = core::run_discovery(sc);

  std::printf("discovered %zu services in %.0f ms (virtual time):\n\n",
              report.services.size(), report.total_ms);
  for (const auto& svc : report.services) {
    std::printf("  [Level %d] %-24s variant=%-10s services:",
                svc.level, svc.object_id.c_str(), svc.variant_tag.c_str());
    for (const auto& s : svc.services) std::printf(" '%s'", s.c_str());
    std::printf("\n");
  }
  std::printf(
      "\nAlice saw the employee TV variant (not the managers' one) and —\n"
      "because she is a counseling-group fellow — the magazine machine's\n"
      "covert Level 3 face. Any other subject gets its Level 2 cover.\n");
  return 0;
}
