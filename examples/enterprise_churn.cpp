// Enterprise churn: subject joins, discovers services, gets revoked, and
// can no longer discover — plus the updating-overhead comparison that
// makes Argus scale to enterprises (§VIII / Table I).
//
//   $ ./build/examples/enterprise_churn
#include <cstdio>

#include "argus/object_engine.hpp"
#include "argus/subject_engine.hpp"
#include "baselines/updating.hpp"

using namespace argus;
using backend::AttributeMap;
using backend::Level;

namespace {

bool can_discover(const backend::Backend& be,
                  const backend::SubjectCredentials& subject,
                  core::ObjectEngine& object, std::uint64_t seed) {
  core::SubjectEngineConfig cfg;
  cfg.creds = subject;
  cfg.admin_pub = be.admin_public_key();
  cfg.seed = seed;
  core::SubjectEngine s(std::move(cfg));
  const Bytes que1 = s.start_round();
  const auto res1 = object.handle(que1, be.now());
  if (!res1) return false;
  const auto que2 = s.handle(*res1, be.now());
  if (!que2) return false;
  const auto res2 = object.handle(*que2, be.now());
  if (!res2) return false;
  (void)s.handle(*res2, be.now());
  return !s.discovered().empty();
}

}  // namespace

int main() {
  std::printf("== Part 1: revocation end-to-end ==\n\n");
  backend::Backend be(crypto::Strength::b128, 3);
  const auto mallory = be.register_subject(
      "mallory", AttributeMap{{"position", "manager"}, {"department", "X"}});
  be.add_policy("position=='manager'", "type=='door lock'",
                {"open", "close"});
  const auto lock = be.register_object(
      "conf-door-lock", AttributeMap{{"type", "door lock"}}, Level::kL2, {},
      {{"position=='manager'", "managers", {"open", "close"}}});

  core::ObjectEngineConfig ocfg;
  ocfg.creds = lock;
  ocfg.admin_pub = be.admin_public_key();
  core::ObjectEngine lock_engine(std::move(ocfg));

  std::printf("mallory discovers the door lock: %s\n",
              can_discover(be, mallory, lock_engine, 1) ? "YES" : "no");

  // Mallory leaves the company. The backend enumerates the N objects she
  // could access and notifies each to blacklist her ID.
  const auto notice = be.revoke_subject("mallory");
  std::printf("backend revokes mallory -> %zu object notification(s)\n",
              notice.objects_to_notify.size());
  for (const auto& oid : notice.objects_to_notify) {
    if (oid == lock.id) lock_engine.revoke_subject("mallory");
  }
  std::printf("mallory discovers the door lock: %s\n\n",
              can_discover(be, mallory, lock_engine, 2) ? "YES" : "no");

  std::printf("== Part 2: updating overhead at enterprise scale ==\n\n");
  baselines::EnterpriseSpec spec;
  spec.departments = 3;
  spec.subjects_per_department = 120;  // a department-sized category
  spec.rooms_per_department = 8;
  spec.objects_per_room = 6;           // N = 48 devices per member
  baselines::SyntheticEnterprise enterprise(spec);
  const std::string victim = "dept-1:subject-3";

  const auto idacl = baselines::measure_idacl(enterprise, victim);
  const auto abe = baselines::measure_abe(enterprise, victim);
  const auto argus = baselines::measure_argus(enterprise, victim);
  std::printf("%-14s %8s %8s\n", "scheme", "add", "remove");
  std::printf("%-14s %8zu %8zu\n", "ID-based ACL", idacl.add_subject,
              idacl.remove_subject);
  std::printf("%-14s %8zu %8zu\n", "ABE", abe.add_subject,
              abe.remove_subject);
  std::printf("%-14s %8zu %8zu\n", "Argus", argus.add_subject,
              argus.remove_subject);
  std::printf(
      "\nA newcomer costs Argus ONE backend interaction (vs %zu object\n"
      "updates under ID-ACLs); removing a member costs Argus %zu\n"
      "notifications while ABE's global attribute revocation touches %zu\n"
      "entities.\n",
      idacl.add_subject, argus.remove_subject, abe.remove_subject);
  return 0;
}
