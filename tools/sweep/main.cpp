// sweep — run a discovery sweep grid across worker threads.
//
//   sweep --grid fig6g --threads 8 --out fig6g
//   sweep --spec my_grid.txt --threads 1
//   sweep --list
//
// The grid comes from a named builtin (--grid) or a declarative spec file
// (--spec, format in src/harness/spec.hpp). Runs shard across a thread
// pool; output is merged in grid order, so the JSONL records and golden
// digests are byte-identical for --threads 1 and --threads N — diff the
// two to check determinism, diff against a committed file to catch
// behavioural drift.
//
// With --out PREFIX, writes PREFIX.jsonl (one record per run followed by
// one grid-level rollup record — every counter plus histogram quantiles,
// merged in grid order so it is thread-count invariant) and
// PREFIX.digests (one "digest  label" line per run). With
// --trace PREFIX, additionally retains each run's protocol trace and
// writes it to PREFIX-<index>.jsonl for tools/traceview — the way to
// inspect a chaos cell's fault timeline event by event.
//
// With --snapshot-dir DIR, every run additionally dumps its final fleet
// state as a sealed snapshot bundle (persist/snapshot.hpp) to
// DIR/run-<index>.snap — the per-cell artefact a reboot-from-snapshot
// investigation restores from.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "harness/spec.hpp"

using namespace argus;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--grid NAME | --spec FILE) [--threads N]"
               " [--out PREFIX] [--trace PREFIX] [--snapshot-dir DIR]"
               " [--quiet]\n"
               "       %s --list | --list-grids\n",
               argv0, argv0);
  return 2;
}

// One "values..." cell for a numeric axis, e.g. "0,0.1,0.2".
template <typename T>
std::string axis_values(const std::vector<T>& values) {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  return os.str();
}

// Which axes a grid actually sweeps (non-default entries only), e.g.
// "levels=1,2,3 objects=10 flood=0,100,200,400 queue=16".
std::string grid_axes(const harness::GridSpec& s) {
  std::string out = "levels=" + axis_values(s.levels);
  out += " objects=" + axis_values(s.objects);
  if (s.per_ring > 0) {
    out += " rings=" + std::to_string(s.per_ring);
  } else if (s.hops.size() > 1 || s.hops.front() != 1) {
    out += " hops=" + axis_values(s.hops);
  }
  if (s.drop.size() > 1 || s.drop.front() != 0) {
    out += " drop=" + axis_values(s.drop);
  }
  if (s.seeds.size() > 1 || s.seeds.front() != 17) {
    out += " seeds=" + axis_values(s.seeds);
  }
  if (s.crash.size() > 1 || s.crash.front() != 0) {
    out += " crash=" + axis_values(s.crash);
    if (s.reboot_ms >= 0) {
      out += " reboot=" + std::to_string(static_cast<long>(s.reboot_ms));
      if (s.snapshot_reboot) out += " snapshot";
    }
  }
  if (s.straggle.size() > 1 || s.straggle.front() != 0) {
    out += " straggle=" + axis_values(s.straggle);
  }
  if (s.zombie.size() > 1 || s.zombie.front() != 0) {
    out += " zombie=" + axis_values(s.zombie);
  }
  if (s.byzantine.size() > 1 || s.byzantine.front() != 0) {
    out += " byzantine=" + axis_values(s.byzantine);
  }
  if (s.flood_rate.size() > 1 || s.flood_rate.front() != 0) {
    out += " flood=" + axis_values(s.flood_rate);
  }
  if (s.queue_depth.size() > 1 || s.queue_depth.front() != 0) {
    out += " queue=" + axis_values(s.queue_depth);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid_name;
  std::string spec_path;
  std::string out_prefix;
  std::string trace_prefix;
  std::string snapshot_dir;
  std::size_t threads = 0;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      for (const auto& [name, spec] : harness::builtin_grids()) {
        std::printf("%-8s %zu runs\n", name.c_str(),
                    harness::expand(spec).size());
      }
      return 0;
    }
    if (std::strcmp(arg, "--list-grids") == 0) {
      for (const auto& [name, spec] : harness::builtin_grids()) {
        std::printf("%-8s %3zu runs  %s\n", name.c_str(),
                    harness::expand(spec).size(), grid_axes(spec).c_str());
      }
      return 0;
    }
    if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--grid") == 0 && i + 1 < argc) {
      grid_name = argv[++i];
    } else if (std::strcmp(arg, "--spec") == 0 && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      out_prefix = argv[++i];
    } else if (std::strcmp(arg, "--trace") == 0 && i + 1 < argc) {
      trace_prefix = argv[++i];
    } else if (std::strcmp(arg, "--snapshot-dir") == 0 && i + 1 < argc) {
      snapshot_dir = argv[++i];
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      return usage(argv[0]);
    }
  }
  if (grid_name.empty() == spec_path.empty()) return usage(argv[0]);

  harness::GridSpec spec;
  if (!grid_name.empty()) {
    const auto& grids = harness::builtin_grids();
    const auto it = grids.find(grid_name);
    if (it == grids.end()) {
      std::fprintf(stderr, "unknown grid '%s' (try --list)\n",
                   grid_name.c_str());
      return 2;
    }
    spec = it->second;
  } else {
    std::ifstream in(spec_path);
    if (!in) {
      std::fprintf(stderr, "cannot open spec '%s'\n", spec_path.c_str());
      return 2;
    }
    std::string error;
    const auto parsed = harness::parse_grid_spec(in, &error);
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", spec_path.c_str(), error.c_str());
      return 2;
    }
    spec = *parsed;
  }

  const auto grid = harness::expand(spec);
  if (!snapshot_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(snapshot_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create snapshot dir '%s': %s\n",
                   snapshot_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }
  const harness::SweepRunner runner({.threads = threads,
                                     .keep_traces = !trace_prefix.empty(),
                                     .keep_metrics = !out_prefix.empty()});
  const auto t0 = std::chrono::steady_clock::now();
  // Same factory as SweepRunner::run(grid), plus the per-run snapshot
  // path when requested — labels contain spaces, so files key by grid
  // index, which the printed table and .digests file share.
  const auto results =
      runner.run(grid.size(), [&grid, &snapshot_dir](std::size_t i) {
        harness::RunSpec rspec;
        rspec.label = harness::point_label(grid[i]);
        rspec.scenarios.push_back(harness::make_scenario(grid[i]));
        if (!snapshot_dir.empty()) {
          rspec.scenarios.back().snapshot_path =
              snapshot_dir + "/run-" + std::to_string(i) + ".snap";
        }
        return rspec;
      });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::ostringstream jsonl;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    harness::write_jsonl_line(jsonl, grid[i], results[i]);
  }
  if (!out_prefix.empty()) {
    harness::write_rollup_line(jsonl, harness::rollup_metrics(results),
                               results.size());
  }
  if (!out_prefix.empty()) {
    std::ofstream jf(out_prefix + ".jsonl", std::ios::binary);
    const std::string body = jsonl.str();
    jf.write(body.data(), static_cast<std::streamsize>(body.size()));
    std::ofstream df(out_prefix + ".digests", std::ios::binary);
    for (const auto& res : results) {
      df << res.digest << "  " << res.label << "\n";
    }
  }
  if (!trace_prefix.empty()) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::ofstream tf(trace_prefix + "-" + std::to_string(i) + ".jsonl",
                       std::ios::binary);
      argus::obs::write_jsonl(*results[i].trace, tf);
    }
  }
  if (!quiet) {
    std::printf("%-34s | %9s %6s | %s\n", "run", "total", "found", "digest");
    std::printf("-----------------------------------+------------------+"
                "-----------------\n");
    for (const auto& res : results) {
      std::printf("%-34s | %7.0fms %3zu/%-3zu | %.16s…\n", res.label.c_str(),
                  res.report().total_ms, res.report().services.size(),
                  res.report().outcomes.size(), res.digest.c_str());
    }
  }
  std::printf("%zu runs, %zu threads, %.2f s wall\n", grid.size(),
              threads == 0 ? std::thread::hardware_concurrency() : threads,
              wall_s);
  if (!out_prefix.empty()) {
    std::printf("wrote %s.jsonl and %s.digests\n", out_prefix.c_str(),
                out_prefix.c_str());
  }
  if (!trace_prefix.empty()) {
    std::printf("wrote %s-0.jsonl .. %s-%zu.jsonl (tools/traceview)\n",
                trace_prefix.c_str(), trace_prefix.c_str(),
                results.size() - 1);
  }
  if (!snapshot_dir.empty()) {
    std::printf("wrote %s/run-0.snap .. %s/run-%zu.snap (sealed fleet "
                "bundles)\n",
                snapshot_dir.c_str(), snapshot_dir.c_str(),
                results.size() - 1);
  }
  return 0;
}
