// argusctl — Argus subject CLI: drives discovery rounds against argusd
// over the reliable-ordered UDP loopback transport.
//
// Builds the same deterministic paper-testbed scenario as the daemon
// (harness::make_scenario with matching --objects/--level/--seed), dials
// the daemon, runs --rounds discovery rounds with the PR-2 retry policy,
// and prints one JSON report line. Exit 0 iff every round resolved every
// channel (delivery_ratio == 1.0) — and, with --compare-sim, iff the
// engine-level result set matches an in-process simulator run of the
// identical scenario.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <unistd.h>

#include "argus/discovery.hpp"
#include "fault/netem.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "transport/client.hpp"
#include "transport/transport.hpp"
#include "transport/udp.hpp"

namespace {

struct Options {
  std::string connect = "127.0.0.1:0";
  std::size_t objects = 20;
  int level = 2;
  std::uint64_t seed = 17;
  std::size_t rounds = 1;
  double deadline_ms = 8000;
  double loss = 0, dup = 0, reorder = 0;
  std::uint64_t shim_seed = 2;
  bool compare_sim = false;
  bool shutdown = false;  // send a control shutdown after the last round
  bool resumption = true;
  bool quiet = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: argusctl --connect IP:PORT [--objects N] [--level 1|2|3]\n"
      "                [--seed N] [--rounds N] [--deadline-ms X]\n"
      "                [--loss P] [--dup P] [--reorder P] [--shim-seed N]\n"
      "                [--compare-sim] [--shutdown] [--no-resume] [--quiet]\n");
}

bool parse(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    double v = 0;
    if (a == "--connect" && i + 1 < argc) o->connect = argv[++i];
    else if (a == "--objects" && next(&v)) o->objects = static_cast<std::size_t>(v);
    else if (a == "--level" && next(&v)) o->level = static_cast<int>(v);
    else if (a == "--seed" && next(&v)) o->seed = static_cast<std::uint64_t>(v);
    else if (a == "--rounds" && next(&v)) o->rounds = static_cast<std::size_t>(v);
    else if (a == "--deadline-ms" && next(&v)) o->deadline_ms = v;
    else if (a == "--loss" && next(&v)) o->loss = v;
    else if (a == "--dup" && next(&v)) o->dup = v;
    else if (a == "--reorder" && next(&v)) o->reorder = v;
    else if (a == "--shim-seed" && next(&v)) o->shim_seed = static_cast<std::uint64_t>(v);
    else if (a == "--compare-sim") o->compare_sim = true;
    else if (a == "--shutdown") o->shutdown = true;
    else if (a == "--no-resume") o->resumption = false;
    else if (a == "--quiet") o->quiet = true;
    else { usage(); return false; }
  }
  return true;
}

/// Engine-level result set: (object, level, variant) triples, order-free.
std::set<std::tuple<std::string, int, std::string>> result_set(
    const std::vector<argus::core::DiscoveredService>& services) {
  std::set<std::tuple<std::string, int, std::string>> out;
  for (const auto& s : services) out.emplace(s.object_id, s.level, s.variant_tag);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace argus;
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;

  transport::NetAddr daemon;
  if (!transport::parse_addr(opt.connect, &daemon) || daemon.port == 0) {
    std::fprintf(stderr, "argusctl: bad --connect '%s'\n", opt.connect.c_str());
    return 2;
  }

  harness::SweepPoint point;
  point.level = opt.level;
  point.objects = opt.objects;
  point.seed = opt.seed;
  core::DiscoveryScenario scenario = harness::make_scenario(point);

  auto socket = transport::UdpSocket::bind_loopback(0);
  if (!socket) {
    std::fprintf(stderr, "argusctl: bind failed\n");
    return 1;
  }
  fault::NetemParams shim;
  shim.drop_prob = opt.loss;
  shim.dup_prob = opt.dup;
  shim.reorder_prob = opt.reorder;
  shim.seed = opt.shim_seed;
  fault::NetemSocket shimmed(*socket, shim);

  obs::MetricsRegistry metrics;
  transport::EndpointParams ep;
  // ISN-style: a restarted subject re-dials with fresh conn ids so the
  // daemon replaces the stale connection instead of feeding its
  // handshake into a dead state machine.
  ep.conn_id_base = static_cast<std::uint32_t>(getpid()) * 2654435761u | 1u;
  transport::TransportEndpoint endpoint(shimmed, ep, &metrics);
  transport::SockTransport sock(endpoint);

  core::SubjectEngineConfig scfg;
  scfg.version = scenario.version;
  scfg.creds = scenario.subject;
  scfg.admin_pub = scenario.admin_pub;
  scfg.strength = scenario.strength;
  scfg.seed = scenario.seed;
  scfg.seek_level3 = scenario.seek_level3;
  scfg.resumption.enabled = opt.resumption;
  scfg.metrics = &metrics;

  transport::ClientParams params;
  params.expected_objects = scenario.objects.size();
  params.epoch = scenario.epoch;
  params.retry.mode = core::RetryMode::kOn;
  params.retry.round_deadline_ms = opt.deadline_ms;
  params.metrics = &metrics;
  transport::SubjectClient client(std::move(scfg), params, sock);

  const double start = transport::steady_now_ms();
  const auto wall_now = [&] { return transport::steady_now_ms() - start; };

  endpoint.connect(daemon, wall_now());

  std::size_t resolved = 0, expected = 0;
  double last_round_ms = 0;
  std::uint64_t que1_retx = 0, que2_retx = 0, rejects = 0;
  bool all_complete = true;
  for (std::size_t r = 0; r < opt.rounds; ++r) {
    client.begin_round(r, wall_now());
    while (!client.round_done()) {
      client.step(wall_now());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const transport::ClientReport report = client.finish_round(wall_now());
    resolved += report.resolved;
    expected += report.expected;
    last_round_ms = report.round_ms;
    que1_retx += report.que1_retransmits;
    que2_retx += report.que2_retransmits;
    rejects += report.rejects;
    all_complete &= report.complete();
    if (!opt.quiet) {
      std::fprintf(stderr,
                   "argusctl: round %zu: %zu/%zu in %.1f ms "
                   "(que1_retx %llu, que2_retx %llu)\n",
                   r, report.resolved, report.expected, report.round_ms,
                   static_cast<unsigned long long>(report.que1_retransmits),
                   static_cast<unsigned long long>(report.que2_retransmits));
    }
  }

  // Engine-level parity with the authoritative simulator: run the
  // identical scenario in-process and compare discovered (object, level,
  // variant) sets.
  bool sim_match = true;
  if (opt.compare_sim) {
    const core::DiscoveryReport sim_report = core::run_discovery(scenario);
    sim_match = result_set(sim_report.services) ==
                result_set(client.engine().discovered());
    if (!sim_match && !opt.quiet) {
      std::fprintf(stderr,
                   "argusctl: sim mismatch (daemon %zu vs sim %zu services)\n",
                   client.engine().discovered().size(),
                   sim_report.services.size());
    }
  }

  if (opt.shutdown) {
    // Tell the daemon to exit. Pump until the reliable layer has the
    // frame acked — the daemon handles it in the same pump that acks it,
    // so a lossy shim can't strand the order — then leave WITHOUT a FIN:
    // the daemon's keep-alive reaper must retire our connection on its
    // own (the smoke test asserts conns_live == 0 afterwards).
    client.send_control(daemon.pack(), transport::CtlOp::kShutdown,
                        wall_now());
    const double until = wall_now() + 10000;
    while (wall_now() < until) {
      sock.pump(wall_now());
      shimmed.flush();
      const auto* conn = endpoint.conn(daemon);
      if (conn == nullptr || conn->defunct() ||
          (conn->in_flight() == 0 && conn->queued() == 0)) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  const double ratio =
      expected == 0 ? 1.0
                    : static_cast<double>(resolved) / static_cast<double>(expected);
  std::printf(
      "{\"expected\":%zu,\"resolved\":%zu,\"delivery_ratio\":%.4f,"
      "\"services\":%zu,\"round_ms\":%.1f,\"que1_retx\":%llu,"
      "\"que2_retx\":%llu,\"rejects\":%llu,\"sim_match\":%s,"
      "\"shim_dropped\":%llu}\n",
      expected, resolved, ratio, client.engine().discovered().size(),
      last_round_ms, static_cast<unsigned long long>(que1_retx),
      static_cast<unsigned long long>(que2_retx),
      static_cast<unsigned long long>(rejects), sim_match ? "true" : "false",
      static_cast<unsigned long long>(shimmed.stats().dropped));
  std::fflush(stdout);
  return all_complete && sim_match ? 0 : 1;
}
