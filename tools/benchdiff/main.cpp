// benchdiff — compare bench trajectory entries (obs/bench_report.hpp).
//
//   benchdiff BENCH_fig6e.json              last two entries of one file
//   benchdiff OLD.json NEW.json             last entry of each file
//   --warn PCT    warn threshold (default 10)
//   --fail PCT    fail threshold (default 30)
//   --gate-wall   gate wall-source metrics too (default: informational)
//
// Exit codes (CI contract):
//   0  ok          no gated metric regressed past --warn; also a freshly
//      seeded trajectory (single first entry / empty before-file), which
//      prints a "baseline recorded" note — a new bench's first CI run is
//      a baseline, not a broken pipeline
//   2  usage / IO / schema error (unreadable file, name mismatch,
//      zero entries where a comparison was requested)
//   3  warn        a gated metric regressed past --warn but not --fail
//   4  fail        a gated metric regressed past --fail
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "obs/bench_report.hpp"

using namespace argus::obs::bench;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: benchdiff [--warn PCT] [--fail PCT] [--gate-wall] "
               "BEFORE.json [AFTER.json]\n");
  return 2;
}

std::optional<Trajectory> load(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n", path);
    return std::nullopt;
  }
  std::string error;
  auto t = load_trajectory(in, &error);
  if (!t) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", path, error.c_str());
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  DiffThresholds thresholds;
  const char* before_path = nullptr;
  const char* after_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--warn") == 0 && i + 1 < argc) {
      thresholds.warn_pct = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--fail") == 0 && i + 1 < argc) {
      thresholds.fail_pct = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--gate-wall") == 0) {
      thresholds.gate_wall = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (before_path == nullptr) {
      before_path = argv[i];
    } else if (after_path == nullptr) {
      after_path = argv[i];
    } else {
      return usage();
    }
  }
  if (before_path == nullptr) return usage();

  const auto before = load(before_path);
  if (!before) return 2;
  std::optional<Trajectory> after;
  if (after_path != nullptr) {
    after = load(after_path);
    if (!after) return 2;
  }

  const DiffResult result = compare_trajectories(
      *before, after ? &*after : nullptr, thresholds);
  write_diff_report(std::cout, result);
  switch (result.verdict) {
    case Verdict::kOk:
    case Verdict::kBaseline:
      return 0;
    case Verdict::kWarn:
      return 3;
    case Verdict::kFail:
      return 4;
    case Verdict::kSchemaMismatch:
      return 2;
  }
  return 2;
}
