// argusd — Argus object daemon: N ObjectEngines behind a reliable-ordered
// UDP loopback endpoint (transport/host.hpp over transport/endpoint.hpp).
//
// The fleet is the deterministic paper-testbed scenario
// (harness::make_scenario), so an argusctl started with the same
// --objects/--level/--seed derives matching credentials from its own
// Backend and the two processes can complete real handshakes with no
// key-distribution side channel.
//
// Prints "LISTENING <port>" once bound (port 0 = ephemeral), serves until
// SIGTERM/SIGINT, a control-plane shutdown frame, or --run-ms expires,
// then drains until every connection is reaped and prints one JSON stats
// line. With --snapshot-dir the engine fleet restores on start and
// persists (atomically) on interval/shutdown.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>

#include "fault/netem.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "transport/host.hpp"
#include "transport/transport.hpp"
#include "transport/udp.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

struct Options {
  std::uint16_t port = 0;
  std::size_t objects = 20;
  int level = 2;
  std::uint64_t seed = 17;
  std::string snapshot_dir;
  double snapshot_interval_ms = 0;
  double keepalive_idle_ms = 1500;
  double keepalive_timeout_ms = 6000;
  std::size_t max_conns = 64;
  double loss = 0, dup = 0, reorder = 0;
  std::uint64_t shim_seed = 1;
  double run_ms = 0;  // 0 = until signalled
  bool admission = true;
  bool resumption = true;
  bool quiet = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: argusd [--port N] [--objects N] [--level 1|2|3] [--seed N]\n"
      "              [--snapshot-dir DIR] [--snapshot-interval-ms X]\n"
      "              [--keepalive-ms X] [--keepalive-timeout-ms X]\n"
      "              [--max-conns N] [--loss P] [--dup P] [--reorder P]\n"
      "              [--shim-seed N] [--run-ms X] [--no-admission]\n"
      "              [--no-resume] [--quiet]\n");
}

bool parse(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    double v = 0;
    if (a == "--port" && next(&v)) o->port = static_cast<std::uint16_t>(v);
    else if (a == "--objects" && next(&v)) o->objects = static_cast<std::size_t>(v);
    else if (a == "--level" && next(&v)) o->level = static_cast<int>(v);
    else if (a == "--seed" && next(&v)) o->seed = static_cast<std::uint64_t>(v);
    else if (a == "--snapshot-dir" && i + 1 < argc) o->snapshot_dir = argv[++i];
    else if (a == "--snapshot-interval-ms" && next(&v)) o->snapshot_interval_ms = v;
    else if (a == "--keepalive-ms" && next(&v)) o->keepalive_idle_ms = v;
    else if (a == "--keepalive-timeout-ms" && next(&v)) o->keepalive_timeout_ms = v;
    else if (a == "--max-conns" && next(&v)) o->max_conns = static_cast<std::size_t>(v);
    else if (a == "--loss" && next(&v)) o->loss = v;
    else if (a == "--dup" && next(&v)) o->dup = v;
    else if (a == "--reorder" && next(&v)) o->reorder = v;
    else if (a == "--shim-seed" && next(&v)) o->shim_seed = static_cast<std::uint64_t>(v);
    else if (a == "--run-ms" && next(&v)) o->run_ms = v;
    else if (a == "--no-admission") o->admission = false;
    else if (a == "--no-resume") o->resumption = false;
    else if (a == "--quiet") o->quiet = true;
    else { usage(); return false; }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace argus;
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  // Deterministic paper-testbed fleet: both sides of the wire derive the
  // same credentials from (objects, level, seed).
  harness::SweepPoint point;
  point.level = opt.level;
  point.objects = opt.objects;
  point.seed = opt.seed;
  const core::DiscoveryScenario scenario = harness::make_scenario(point);

  auto socket = transport::UdpSocket::bind_loopback(opt.port);
  if (!socket) {
    std::fprintf(stderr, "argusd: bind 127.0.0.1:%u failed\n", opt.port);
    return 1;
  }
  fault::NetemParams shim;
  shim.drop_prob = opt.loss;
  shim.dup_prob = opt.dup;
  shim.reorder_prob = opt.reorder;
  shim.seed = opt.shim_seed;
  fault::NetemSocket shimmed(*socket, shim);

  obs::MetricsRegistry metrics;
  transport::EndpointParams ep;
  ep.reliable.keepalive_idle_ms = opt.keepalive_idle_ms;
  ep.reliable.keepalive_timeout_ms = opt.keepalive_timeout_ms;
  ep.reliable.half_open_timeout_ms = opt.keepalive_timeout_ms;
  ep.max_conns = opt.max_conns;
  // ISN-style: a restarted daemon must not reuse its predecessor's ids.
  ep.conn_id_base = static_cast<std::uint32_t>(getpid()) * 2654435761u | 1u;
  transport::TransportEndpoint endpoint(shimmed, ep, &metrics);
  transport::SockTransport sock(endpoint);

  transport::HostConfig host_cfg;
  host_cfg.epoch = scenario.epoch;
  host_cfg.metrics = &metrics;
  if (!opt.snapshot_dir.empty()) {
    host_cfg.snapshot_path = opt.snapshot_dir + "/fleet.snap";
    host_cfg.snapshot_interval_ms = opt.snapshot_interval_ms;
  }
  for (std::size_t i = 0; i < scenario.objects.size(); ++i) {
    core::ObjectEngineConfig ocfg;
    ocfg.version = scenario.version;
    ocfg.creds = scenario.objects[i].creds;
    ocfg.admin_pub = scenario.admin_pub;
    ocfg.strength = scenario.strength;
    ocfg.seed = scenario.seed + 1000 + i;
    ocfg.admission.enabled = opt.admission;
    ocfg.resumption.enabled = opt.resumption;
    ocfg.metrics = &metrics;
    host_cfg.objects.push_back(std::move(ocfg));
  }

  transport::ObjectHost host(std::move(host_cfg), sock);
  std::size_t restored = 0;
  if (!opt.snapshot_dir.empty()) {
    if (host.restore_from_file() == persist::RestoreError::kOk) {
      restored = host.restored_engines();
    }
  }

  const std::uint16_t port = endpoint.local_addr().port;
  std::printf("LISTENING %u\n", port);
  std::fflush(stdout);
  if (!opt.quiet) {
    std::fprintf(stderr,
                 "argusd: %zu objects (L%d, seed %llu) on 127.0.0.1:%u, "
                 "%zu restored\n",
                 host.engine_count(), opt.level,
                 static_cast<unsigned long long>(opt.seed), port, restored);
  }

  const double start = transport::steady_now_ms();
  double now = 0;
  while (!g_stop.load()) {
    now = transport::steady_now_ms() - start;
    host.pump(now);
    if (host.shutdown_requested()) break;
    if (opt.run_ms > 0 && now >= opt.run_ms) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Drain: let keep-alive/half-open reaping retire every connection so a
  // clean exit proves zero leaked table slots. A client that vanished
  // without FIN ages out on the keep-alive clock.
  const double drain_deadline =
      transport::steady_now_ms() - start + opt.keepalive_timeout_ms + 500;
  while (endpoint.live_conns() > 0) {
    now = transport::steady_now_ms() - start;
    if (now >= drain_deadline) break;
    host.pump(now);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!opt.snapshot_dir.empty()) host.write_snapshot();

  const auto& hs = host.stats();
  const auto& es = endpoint.stats();
  std::printf(
      "{\"conns_live\":%zu,\"conns_accepted\":%llu,\"conns_closed\":%llu,"
      "\"conns_reaped_dead\":%llu,\"conns_reaped_half_open\":%llu,"
      "\"conns_evicted\":%llu,\"frames_rx\":%llu,\"replies_tx\":%llu,"
      "\"broadcasts_rx\":%llu,\"snapshots_written\":%llu,"
      "\"shim_dropped\":%llu}\n",
      endpoint.live_conns(),
      static_cast<unsigned long long>(es.accepted),
      static_cast<unsigned long long>(es.closed),
      static_cast<unsigned long long>(es.reaped_dead),
      static_cast<unsigned long long>(es.reaped_half_open),
      static_cast<unsigned long long>(es.evicted),
      static_cast<unsigned long long>(hs.frames_rx),
      static_cast<unsigned long long>(hs.replies_tx),
      static_cast<unsigned long long>(hs.broadcasts_rx),
      static_cast<unsigned long long>(hs.snapshots_written),
      static_cast<unsigned long long>(shimmed.stats().dropped));
  std::fflush(stdout);
  return endpoint.live_conns() == 0 ? 0 : 3;
}
