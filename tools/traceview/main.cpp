// traceview — summarise a JSONL protocol trace (obs/trace.hpp schema).
//
//   traceview [--audit] [--top N] [--chrome OUT.json] TRACE.jsonl
//
// Prints totals, a per-category event census, traffic by message type,
// per-phase span timing, the chaos layer's fault timeline, the
// persistence timeline (persist.snapshot / persist.restore /
// persist.restore_failed instants from reboot-from-snapshot runs),
// rejection census and overload census (bounded-queue sheds, admission
// sheds, flood traffic — when the trace has any), and the
// indistinguishability auditor's verdict.
// `--audit` makes a FAIL verdict the exit status (2), for CI gating;
// `--top N` prints the N hottest spans ranked by *self* time (inclusive
// minus nested children, per node — the wall-clock profiler's
// attribution applied to virtual-time spans);
// `--chrome OUT.json` additionally converts the trace for
// chrome://tracing / Perfetto.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "fault/plan.hpp"
#include "obs/audit.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--audit] [--top N] [--chrome OUT.json] "
               "TRACE.jsonl\n",
               argv0);
  return 1;
}

struct Acc {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double total_ms = 0;
};

/// One chaos-layer event for the timeline (a `fault.*` instant).
struct FaultLine {
  double ts = 0;
  std::uint32_t node = 0;
  std::string name;
  std::uint64_t a = 0;  // straggle factor / ByzantineMode, per the name
};

/// One persistence-layer event (a `persist.*` instant): snapshot capture
/// at crash, restore at reboot, or a failed restore with its error name.
struct PersistLine {
  double ts = 0;
  std::uint32_t node = 0;
  std::string name;
  std::uint64_t a = 0;  // blob bytes (snapshot/restore) or RestoreError
  std::string arg;      // restore_error_name for persist.restore_failed
};

}  // namespace

int main(int argc, char** argv) {
  bool gate_on_audit = false;
  const char* chrome_out = nullptr;
  const char* path = nullptr;
  std::size_t top_n = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--audit") == 0) {
      gate_on_audit = true;
    } else if (std::strcmp(argv[i], "--chrome") == 0 && i + 1 < argc) {
      chrome_out = argv[++i];
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path == nullptr) return usage(argv[0]);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "traceview: cannot open %s\n", path);
    return 1;
  }
  argus::obs::Tracer trace;
  if (!argus::obs::read_jsonl(in, trace)) {
    std::fprintf(stderr, "traceview: %s: malformed JSONL trace\n", path);
    return 1;
  }

  double t_min = 0, t_max = 0;
  bool first_ev = true;
  std::map<std::string, std::uint64_t> by_cat;
  std::map<std::string, Acc> traffic;        // tx.* instants
  std::vector<FaultLine> faults;             // fault.* instants, in ts order
  std::vector<PersistLine> persists;         // persist.* instants, ts order
  std::map<std::string, std::uint64_t> rejects;  // reject.* and drop.*
  // Overload census: bounded-queue sheds (drop.queue_*), admission sheds
  // (shed.*), and flood transmissions — kept apart from the rejection
  // census, since shed load is refused work, not hostile bytes.
  std::map<std::string, Acc> overload;
  for (const auto& ev : trace.events()) {
    if (first_ev) {
      t_min = t_max = ev.ts;
      first_ev = false;
    }
    t_min = std::min(t_min, ev.ts);
    t_max = std::max(t_max, ev.ts);
    ++by_cat[ev.cat.empty() ? "(none)" : ev.cat];
    if (ev.kind != argus::obs::EventKind::kInstant) continue;
    if (ev.name.rfind("tx.", 0) == 0) {
      Acc& acc = traffic[ev.name.substr(3)];
      ++acc.count;
      acc.bytes += ev.a;
      if (ev.name == "tx.FLOOD") {
        Acc& fl = overload[ev.name];
        ++fl.count;
        fl.bytes += ev.a;
      }
    } else if (ev.name.rfind("fault.", 0) == 0) {
      faults.push_back({ev.ts, ev.node, ev.name, ev.a});
    } else if (ev.name.rfind("persist.", 0) == 0) {
      persists.push_back({ev.ts, ev.node, ev.name, ev.a, ev.arg});
    } else if (ev.name.rfind("shed.", 0) == 0 ||
               ev.name.rfind("drop.queue", 0) == 0) {
      Acc& acc = overload[ev.name];
      ++acc.count;
      acc.bytes += ev.a;
    } else if (ev.name.rfind("reject.", 0) == 0 ||
               ev.name.rfind("drop.", 0) == 0) {
      ++rejects[ev.name];
    }
  }
  std::stable_sort(faults.begin(), faults.end(),
                   [](const FaultLine& x, const FaultLine& y) {
                     return x.ts < y.ts;
                   });
  const auto spans = trace.spans();
  std::map<std::string, Acc> phases;
  for (const auto& span : spans) {
    Acc& acc = phases[span.name];
    ++acc.count;
    acc.total_ms += span.dur;
  }

  std::printf("%s\n", path);
  std::printf("  events %zu (spans %zu, %s), virtual time %.3f .. %.3f ms\n",
              trace.size(), spans.size(),
              trace.well_formed() ? "well-formed" : "NOT WELL-FORMED", t_min,
              t_max);
  std::printf("\n  events by category\n");
  for (const auto& [cat, n] : by_cat) {
    std::printf("    %-12s %8llu\n", cat.c_str(),
                static_cast<unsigned long long>(n));
  }
  if (!traffic.empty()) {
    std::printf("\n  traffic by message type\n");
    std::uint64_t tot_count = 0, tot_bytes = 0;
    for (const auto& [type, acc] : traffic) {
      std::printf("    %-12s %6llu msgs %10llu B\n", type.c_str(),
                  static_cast<unsigned long long>(acc.count),
                  static_cast<unsigned long long>(acc.bytes));
      tot_count += acc.count;
      tot_bytes += acc.bytes;
    }
    std::printf("    %-12s %6llu msgs %10llu B\n", "total",
                static_cast<unsigned long long>(tot_count),
                static_cast<unsigned long long>(tot_bytes));
  }
  if (!phases.empty()) {
    std::printf("\n  span timing by phase\n");
    for (const auto& [name, acc] : phases) {
      std::printf("    %-16s %6llu spans %10.3f ms total %8.3f ms mean\n",
                  name.c_str(), static_cast<unsigned long long>(acc.count),
                  acc.total_ms,
                  acc.total_ms / static_cast<double>(acc.count));
    }
  }
  if (top_n > 0 && !spans.empty()) {
    // Hot spans by self time: nesting is per node (Tracer guarantees
    // spans nest within a node), so each node is one aggregation group.
    std::vector<argus::obs::prof::FlatSpan> flat;
    flat.reserve(spans.size());
    for (const auto& span : spans) {
      flat.push_back({span.node, span.ts, span.dur, span.name});
    }
    const auto stats = argus::obs::prof::aggregate_flat_spans(std::move(flat));
    std::printf("\n  hottest spans by self time (virtual ms)\n");
    argus::obs::prof::write_top_table(std::cout, stats, top_n);
  }

  if (!faults.empty()) {
    std::printf("\n  fault timeline (%zu chaos events)\n", faults.size());
    for (const auto& f : faults) {
      std::printf("    %10.3f ms  node %-4u %-20s", f.ts, f.node,
                  f.name.c_str());
      if (f.name == "fault.straggle.begin") {
        std::printf(" x%llu compute", static_cast<unsigned long long>(f.a));
      } else if (f.name == "fault.byzantine") {
        std::printf(" mode=%s",
                    argus::fault::byzantine_mode_name(
                        static_cast<argus::fault::ByzantineMode>(f.a)));
      }
      std::printf("\n");
    }
  }
  if (!persists.empty()) {
    std::stable_sort(persists.begin(), persists.end(),
                     [](const PersistLine& x, const PersistLine& y) {
                       return x.ts < y.ts;
                     });
    std::printf("\n  persistence timeline (%zu snapshot/restore events)\n",
                persists.size());
    for (const auto& p : persists) {
      std::printf("    %10.3f ms  node %-4u %-24s", p.ts, p.node,
                  p.name.c_str());
      if (p.name == "persist.restore_failed") {
        std::printf(" err=%s -> blank reboot",
                    p.arg.empty() ? "?" : p.arg.c_str());
      } else {
        std::printf(" %llu B", static_cast<unsigned long long>(p.a));
      }
      std::printf("\n");
    }
  }
  if (!rejects.empty()) {
    std::printf("\n  rejections and fault drops\n");
    for (const auto& [name, n] : rejects) {
      std::printf("    %-24s %8llu\n", name.c_str(),
                  static_cast<unsigned long long>(n));
    }
  }
  if (!overload.empty()) {
    std::printf("\n  overload census (queue sheds, admission sheds, flood)\n");
    for (const auto& [name, acc] : overload) {
      std::printf("    %-24s %8llu msgs %10llu B\n", name.c_str(),
                  static_cast<unsigned long long>(acc.count),
                  static_cast<unsigned long long>(acc.bytes));
    }
  }

  const auto verdict = argus::obs::audit_indistinguishability(trace);
  std::printf("\n  indistinguishability audit: %s\n",
              verdict.summary().c_str());

  if (chrome_out != nullptr) {
    std::ofstream out(chrome_out);
    if (!out) {
      std::fprintf(stderr, "traceview: cannot write %s\n", chrome_out);
      return 1;
    }
    argus::obs::write_chrome_json(trace, out);
    std::printf("\n  wrote %s (open in chrome://tracing or ui.perfetto.dev)\n",
                chrome_out);
  }
  return gate_on_audit && !verdict.passed ? 2 : 0;
}
