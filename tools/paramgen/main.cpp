// Parameter search for the type-A pairing setting used by src/pairing.
//
// Deterministically finds (r, h, p, G):
//   r: 160-bit Solinas-style prime (2^159 + 2^17 + 1, or the next
//      candidate if that were composite),
//   h: smallest multiple of 4 above 2^512/r such that p = h*r - 1 is a
//      512-bit prime (h = 0 mod 4 forces p = 3 mod 4),
//   G: hash-to-curve("argus-generator") with cofactor cleared.
// The output is pasted into src/pairing/params.cpp and re-validated by
// tests/pairing/params_test.cpp on every run.
#include <cstdio>

#include "crypto/primes.hpp"
#include "pairing/curve.hpp"
#include "pairing/tate.hpp"

using namespace argus;
using namespace argus::crypto;

namespace {

UInt pow2(std::size_t bits) {
  UInt x;
  x.w[bits / 64] = std::uint64_t{1} << (bits % 64);
  return x;
}

}  // namespace

int main() {
  HmacDrbg rng(str_bytes("argus-paramgen"));

  // --- group order r -------------------------------------------------
  UInt r = add(add(pow2(159), pow2(17)), UInt::one());
  while (!is_probable_prime(r, rng)) {
    r = add(r, UInt::from_u64(2));
  }
  std::printf("r  = %s\n", r.to_hex().c_str());

  // --- field prime p = h*r - 1 ---------------------------------------
  // Start h just above 2^511/r and round up to a multiple of 4, so p lands
  // in [2^511, 2^512) (exactly 512 bits) with ample headroom.
  DivResult d = divmod(pow2(511), r);
  UInt h = d.quotient;
  // Round up to multiple of 4.
  while ((h.w[0] & 3) != 0) h = add(h, UInt::one());
  UInt p;
  int tries = 0;
  for (;; h = add(h, UInt::from_u64(4)), ++tries) {
    const UProd hr = mul_full(h, r);
    UInt hr_lo;
    for (std::size_t i = 0; i < kMaxWords; ++i) hr_lo.w[i] = hr.w[i];
    p = sub(hr_lo, UInt::one());
    if (p.bit_length() != 512) continue;
    if (is_probable_prime(p, rng)) break;
  }
  std::printf("h  = %s   (tries: %d)\n", h.to_hex().c_str(), tries);
  std::printf("p  = %s\n", p.to_hex().c_str());
  std::printf("p mod 4 = %llu\n",
              static_cast<unsigned long long>(p.w[0] & 3));

  // --- generator ------------------------------------------------------
  pairing::PairingParams params;
  params.p = p;
  params.r = r;
  params.h = h;
  params.gx = UInt::zero();
  params.gy = UInt::zero();
  pairing::PairingCurve curve(params);
  const pairing::PPoint g = curve.hash_to_group(str_bytes("argus-generator"));
  std::printf("gx = %s\n", g.x.to_hex().c_str());
  std::printf("gy = %s\n", g.y.to_hex().c_str());

  // --- sanity ----------------------------------------------------------
  params.gx = g.x;
  params.gy = g.y;
  const pairing::PairingCurve curve2(params);
  const bool order_ok = curve2.scalar_mul(g, r).infinity;
  std::printf("on_curve=%d  rG==inf=%d\n", curve2.on_curve(g) ? 1 : 0,
              order_ok ? 1 : 0);

  const pairing::Pairing e(curve2);
  const pairing::Fp2 g_gt = e.pair(g, g);
  const bool nondegenerate = !e.fp2().is_one(g_gt);
  const bool order_r = e.fp2().is_one(e.gt_pow(g_gt, r));
  std::printf("e(G,G)!=1: %d   e(G,G)^r==1: %d\n", nondegenerate ? 1 : 0,
              order_r ? 1 : 0);
  // Bilinearity spot check.
  HmacDrbg check(str_bytes("check"));
  const UInt a = curve2.random_scalar(check);
  const UInt b = curve2.random_scalar(check);
  const pairing::PPoint ag = curve2.scalar_mul(g, a);
  const pairing::PPoint bg = curve2.scalar_mul(g, b);
  const MontCtx fr(r);
  const UInt ab = fr.from_mont(fr.mul(fr.to_mont(a), fr.to_mont(b)));
  const bool bilinear = e.pair(ag, bg) == e.gt_pow(g_gt, ab);
  std::printf("bilinear: %d\n", bilinear ? 1 : 0);
  return (order_ok && nondegenerate && order_r && bilinear) ? 0 : 1;
}
